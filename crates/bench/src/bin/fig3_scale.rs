//! `fig3_scale` — Figure 3's stable-mode comparison beyond the
//! materialised substrates.
//!
//! Two stages:
//!
//! 1. **Parity** at n = 2¹⁰: [`run_stable_sharded`] against the
//!    monolithic [`run_stable`] across shard counts {1, 4} × thread
//!    counts {1, 4}. Any byte-level divergence fails the run — the
//!    CI-checkable form of the sharded engine's bit-identity contract.
//! 2. **Scale** at 10⁵ (default; 10⁶ via `--million`): the
//!    virtual-arena engine of [`run_scale_stable`], whose rows are
//!    bit-identical at any `--threads` and `--shards`.
//!
//! Built with `--features count-allocs`, the scale stage also reports
//! the live-heap high-water mark divided by the population — the
//! bytes-per-node gauge — and **fails** when it exceeds
//! `--max-bytes-per-node`, the committed memory ceiling the CI `scale`
//! job gates against.
//!
//! With `--churn`, a third stage runs the scale-tier churn probe
//! ([`run_scale_churn`]): rounds of membership flips, counter
//! observations, and dirty-only refreshes at the same population — its
//! fixed per-node state is reported and the memory gauge (peak heap /
//! n) covers the probe too, so the CI ceiling holds for the churn
//! driver at scale, not just the stable one.
//!
//! ```text
//! fig3_scale [--quick] [--n N] [--million] [--seed N] [--threads T]
//!            [--shards S] [--json PATH] [--max-bytes-per-node B]
//!            [--skip-parity] [--churn]
//! ```

use peercache_bench::{teeln, Tee};
use peercache_par::with_threads;
use peercache_pastry::RoutingMode;
use peercache_sim::{
    run_scale_churn, run_scale_stable, run_stable, run_stable_sharded, OverlayKind, QueryMetrics,
    RankingMode, ScaleChurnConfig, ScaleChurnReport, ScaleConfig, StableConfig,
};
use serde::Serialize;

/// The population of the parity stage: large enough to exercise many
/// shards, small enough for the O(n²) materialised build.
const PARITY_N: usize = 1 << 10;

#[derive(Serialize)]
struct ParityCell {
    shards: usize,
    threads: usize,
    matches: bool,
}

#[derive(Serialize)]
struct ScaleRow {
    n: usize,
    k: usize,
    alpha: f64,
    shards: usize,
    avg_hops_aware: f64,
    avg_hops_oblivious: f64,
    avg_hops_core_only: f64,
    reduction_pct: f64,
    success_aware: f64,
    success_oblivious: f64,
    success_core_only: f64,
}

#[derive(Serialize)]
struct MemoryGauge {
    nodes: usize,
    peak_bytes: u64,
    bytes_per_node: f64,
    /// The gate ceiling, when one was requested.
    max_bytes_per_node: Option<u64>,
}

/// The machine-readable report `--json` writes: the bit-identical
/// `rows` separated from the environmental `gauge` (absent without
/// `count-allocs` — heap peaks are a property of the build, not of the
/// experiment's deterministic outputs).
#[derive(Serialize)]
struct ScaleDoc {
    quick: bool,
    threads: usize,
    seed: u64,
    parity_n: usize,
    parity: Vec<ParityCell>,
    rows: Vec<ScaleRow>,
    /// The scale-churn probe's rows (present with `--churn`).
    churn: Option<ScaleChurnReport>,
    gauge: Option<MemoryGauge>,
}

struct Args {
    quick: bool,
    n: usize,
    seed: u64,
    shards: Option<usize>,
    json: Option<String>,
    max_bytes_per_node: Option<u64>,
    skip_parity: bool,
    churn: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        n: 100_000,
        seed: 1,
        shards: None,
        json: None,
        max_bytes_per_node: None,
        skip_parity: false,
        churn: false,
    };
    let mut argv = std::env::args().skip(1);
    let positive = |v: Option<String>, what: &str| -> u64 {
        v.and_then(|s| s.parse().ok())
            .filter(|&x| x > 0)
            .unwrap_or_else(|| panic!("{what} takes a positive integer"))
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--n" => args.n = positive(argv.next(), "--n") as usize,
            "--million" => args.n = 1_000_000,
            "--seed" => {
                args.seed = argv
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed takes an integer");
            }
            "--threads" => {
                peercache_par::set_threads(positive(argv.next(), "--threads") as usize);
            }
            "--shards" => args.shards = Some(positive(argv.next(), "--shards") as usize),
            "--json" => args.json = Some(argv.next().expect("--json takes a path")),
            "--max-bytes-per-node" => {
                args.max_bytes_per_node = Some(positive(argv.next(), "--max-bytes-per-node"));
            }
            "--skip-parity" => args.skip_parity = true,
            "--churn" => args.churn = true,
            other => panic!(
                "unknown argument {other}; usage: [--quick] [--n N] [--million] \
                 [--seed N] [--threads T] [--shards S] [--json PATH] \
                 [--max-bytes-per-node B] [--skip-parity] [--churn]"
            ),
        }
    }
    args
}

#[cfg(feature = "count-allocs")]
fn gauge_reset() {
    peercache_bench::alloc_count::reset_peak();
}

#[cfg(not(feature = "count-allocs"))]
fn gauge_reset() {}

#[cfg(feature = "count-allocs")]
fn gauge_peak() -> Option<u64> {
    Some(peercache_bench::alloc_count::peak_bytes())
}

#[cfg(not(feature = "count-allocs"))]
fn gauge_peak() -> Option<u64> {
    None
}

/// Run the sharded-vs-monolithic parity sweep; returns the cells and
/// whether every one matched.
fn parity_stage(tee: &mut Tee, quick: bool, seed: u64) -> (Vec<ParityCell>, bool) {
    let mut config = StableConfig::paper_defaults(
        OverlayKind::Pastry {
            digit_bits: 1,
            mode: RoutingMode::LocalityAware,
        },
        PARITY_N,
        seed,
    );
    config.ranking = RankingMode::Identical;
    if quick {
        config.queries = 5_000;
    }
    teeln!(
        tee,
        "parity: run_stable_sharded vs run_stable (pastry n={PARITY_N} k={} queries={})",
        config.k,
        config.queries
    );
    let monolithic = run_stable(&config);
    let mut cells = Vec::new();
    let mut all_match = true;
    for shards in [1usize, 4] {
        for threads in [1usize, 4] {
            let report = with_threads(threads, || run_stable_sharded(&config, shards));
            let matches = report == monolithic;
            all_match &= matches;
            teeln!(
                tee,
                "  shards={shards} threads={threads}  reduction={:+.2} %  {}",
                report.reduction_pct,
                if matches { "identical" } else { "DIVERGED" }
            );
            cells.push(ParityCell {
                shards,
                threads,
                matches,
            });
        }
    }
    teeln!(
        tee,
        "  monolithic reduction={:+.2} %  (aware {:.3} vs oblivious {:.3} hops)",
        monolithic.reduction_pct,
        monolithic.aware.avg_hops(),
        monolithic.oblivious.avg_hops()
    );
    (cells, all_match)
}

fn scale_row(
    config: &ScaleConfig,
    aware: &QueryMetrics,
    obl: &QueryMetrics,
    core: &QueryMetrics,
    reduction_pct: f64,
) -> ScaleRow {
    ScaleRow {
        n: config.nodes,
        k: config.k,
        alpha: config.alpha,
        shards: config.shards,
        avg_hops_aware: aware.avg_hops(),
        avg_hops_oblivious: obl.avg_hops(),
        avg_hops_core_only: core.avg_hops(),
        reduction_pct,
        success_aware: aware.success_rate(),
        success_oblivious: obl.success_rate(),
        success_core_only: core.success_rate(),
    }
}

fn main() {
    let args = parse_args();
    let mut tee = Tee::create("fig3_scale");
    teeln!(
        tee,
        "fig3_scale: n={} seed={} threads={} quick={}",
        args.n,
        args.seed,
        peercache_par::threads(),
        args.quick
    );

    let (parity, parity_ok) = if args.skip_parity {
        (Vec::new(), true)
    } else {
        parity_stage(&mut tee, args.quick, args.seed)
    };

    let mut config = ScaleConfig::paper_defaults(args.n, args.seed);
    if let Some(shards) = args.shards {
        config.shards = shards;
    }
    teeln!(
        tee,
        "scale: virtual-arena pastry n={} k={} shards={} queries={}",
        config.nodes,
        config.k,
        config.shards,
        config.queries
    );
    gauge_reset();
    let report = run_scale_stable(&config);
    let row = scale_row(
        &config,
        &report.aware,
        &report.oblivious,
        &report.core_only,
        report.reduction_pct,
    );
    teeln!(
        tee,
        "  aware     {:>8.3} hops  success {:.4}",
        row.avg_hops_aware,
        row.success_aware
    );
    teeln!(
        tee,
        "  oblivious {:>8.3} hops  success {:.4}",
        row.avg_hops_oblivious,
        row.success_oblivious
    );
    teeln!(
        tee,
        "  core-only {:>8.3} hops  success {:.4}",
        row.avg_hops_core_only,
        row.success_core_only
    );
    teeln!(
        tee,
        "  reduction aware vs oblivious: {:+.2} %",
        row.reduction_pct
    );

    // The churn probe runs inside the gauge window on purpose: the
    // bytes-per-node ceiling must hold for the churn driver at scale,
    // not just the stable passes.
    let churn = args.churn.then(|| {
        let mut churn_config = ScaleChurnConfig::paper_defaults(args.n, args.seed);
        churn_config.scale.shards = config.shards;
        if args.quick {
            churn_config.queries_per_round = 10_000;
        }
        teeln!(
            tee,
            "churn: scale probe n={} rounds={} flips/round={} queries/round={}",
            args.n,
            churn_config.rounds,
            churn_config.flips_per_round,
            churn_config.queries_per_round
        );
        let report = run_scale_churn(&churn_config);
        for (i, round) in report.rounds.iter().enumerate() {
            teeln!(
                tee,
                "  round {i}: flips {:>6}  alive {:>7}  refreshed {:>6}  \
                 {:>7.3} hops  success {:.4}",
                round.flips,
                round.alive,
                round.refreshed,
                round.metrics.avg_hops(),
                round.metrics.success_rate()
            );
        }
        teeln!(
            tee,
            "  churn state: {:.1} bytes/node (counters + slab + flags)",
            report.state_bytes_per_node
        );
        report
    });

    let gauge = gauge_peak().map(|peak| {
        let bytes_per_node = peak as f64 / config.nodes as f64;
        teeln!(
            tee,
            "  memory gauge: peak {peak} live heap bytes, {bytes_per_node:.1} bytes/node"
        );
        MemoryGauge {
            nodes: config.nodes,
            peak_bytes: peak,
            bytes_per_node,
            max_bytes_per_node: args.max_bytes_per_node,
        }
    });

    let doc = ScaleDoc {
        quick: args.quick,
        threads: peercache_par::threads(),
        seed: args.seed,
        parity_n: if args.skip_parity { 0 } else { PARITY_N },
        parity,
        rows: vec![row],
        churn,
        gauge,
    };
    if let Some(path) = &args.json {
        let body = serde_json::to_string_pretty(&doc).expect("report serialises");
        std::fs::write(path, body).expect("write JSON report");
        teeln!(tee, "(report written to {path})");
    }
    teeln!(tee, "(output mirrored to {})", tee.path().display());

    let mut failed = false;
    if !parity_ok {
        eprintln!("parity FAILED: the sharded driver diverged from the monolithic one");
        failed = true;
    }
    if let Some(ceiling) = args.max_bytes_per_node {
        match &doc.gauge {
            Some(g) if g.bytes_per_node > ceiling as f64 => {
                eprintln!(
                    "memory gauge FAILED: {:.1} bytes/node exceeds the {ceiling} ceiling",
                    g.bytes_per_node
                );
                failed = true;
            }
            Some(g) => {
                println!(
                    "memory gauge ok: {:.1} bytes/node within the {ceiling} ceiling",
                    g.bytes_per_node
                );
            }
            None => {
                eprintln!(
                    "--max-bytes-per-node needs the count-allocs feature; \
                     rebuild with --features count-allocs"
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
