//! Probe for the paper's §VII future-work question ("the globally optimal
//! choice of auxiliary neighbors can be different"): how much of the
//! realised improvement comes from *other* nodes' locally optimal
//! pointers shortening the tails of my routes?
//!
//! For a sample of origins we measure average hops over the same query
//! mix under three deployments:
//!
//! 1. no auxiliary pointers anywhere (core-only),
//! 2. only the origin holding its locally optimal pointers,
//! 3. every node holding its locally optimal pointers (the paper's
//!    deployment).
//!
//! The gap between (2) and (3) is the headroom a §VII-style global
//! decentralised optimiser would reason about: local selection already
//! cooperates implicitly, because eq. 1 cannot see the pointers a query
//! will encounter after its first hop.

use peercache_core::chord::select_fast;
use peercache_core::{Candidate, ChordProblem};
use peercache_freq::FrequencySnapshot;
use peercache_id::{Id, IdSpace};
use peercache_sim::{OverlayKind, SimOverlay};
use peercache_workload::{random_ids, ItemCatalog, NodeWorkload, RankingAssignment, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut cli = peercache_bench::BinArgs::parse("ablation_global_gap");
    let quick = cli.quick;
    let (n, queries_per_origin, origins) = if quick {
        (128, 800, 8)
    } else {
        (512, 2_000, 16)
    };
    let space = IdSpace::paper();
    let seed = 7u64;
    let mut rng_topology = StdRng::seed_from_u64(seed);
    let mut rng_workload = StdRng::seed_from_u64(seed + 1);

    let node_ids = random_ids(space, n, &mut rng_topology);
    let items = 64;
    let catalog = ItemCatalog::random(space, items, &mut rng_topology);
    let zipf = Zipf::new(items, 1.2).unwrap();
    let assignment = RankingAssignment::random_pool(items, n, 5, &mut rng_workload);
    let mut overlay = SimOverlay::build(OverlayKind::Chord, space, &node_ids, &mut rng_topology);
    let owners: Vec<Id> = (0..items)
        .map(|i| overlay.true_owner(catalog.key(i)).unwrap())
        .collect();

    // Locally optimal selection per node, k = log2 n.
    let k = (n as f64).log2().round() as usize;
    let selections: Vec<Vec<Id>> = node_ids
        .iter()
        .enumerate()
        .map(|(idx, &node)| {
            let wl = NodeWorkload::new(zipf.clone(), assignment.for_node(idx).clone());
            let weights = FrequencySnapshot::from_pairs(wl.node_weights(items, |i| owners[i]));
            let core = overlay.core_neighbors(node);
            let cands: Vec<Candidate> = weights
                .without(core.iter().copied().chain([node]))
                .iter()
                .map(|(id, w)| Candidate::new(id, w))
                .collect();
            select_fast(&ChordProblem::new(space, node, core, cands, k).unwrap())
                .unwrap()
                .aux
        })
        .collect();

    // Measure a fixed query mix from each sampled origin under the three
    // deployments.
    let measure = |overlay: &mut SimOverlay, origin_idx: usize| -> f64 {
        let mut rng = StdRng::seed_from_u64(seed + 2 + origin_idx as u64);
        let wl = NodeWorkload::new(zipf.clone(), assignment.for_node(origin_idx).clone());
        let mut hops = 0u64;
        for _ in 0..queries_per_origin {
            let key = catalog.key(wl.sample_item(&mut rng));
            hops += u64::from(overlay.query(node_ids[origin_idx], key).hops);
        }
        hops as f64 / f64::from(queries_per_origin)
    };

    let mut rng_pick = StdRng::seed_from_u64(seed + 99);
    let sample: Vec<usize> = (0..origins).map(|_| rng_pick.gen_range(0..n)).collect();
    let (mut none, mut solo, mut fleet) = (0.0, 0.0, 0.0);
    for &origin in &sample {
        // (1) core only.
        for &node in &node_ids {
            overlay.set_aux(node, vec![]);
        }
        none += measure(&mut overlay, origin);
        // (2) only the origin selects.
        overlay.set_aux(node_ids[origin], selections[origin].clone());
        solo += measure(&mut overlay, origin);
        // (3) the whole fleet selects.
        for (idx, &node) in node_ids.iter().enumerate() {
            overlay.set_aux(node, selections[idx].clone());
        }
        fleet += measure(&mut overlay, origin);
    }
    let (none, solo, fleet) = (
        none / f64::from(origins),
        solo / f64::from(origins),
        fleet / f64::from(origins),
    );
    peercache_bench::teeln!(
        cli.tee,
        "global-vs-local deployment probe (Chord, n = {n}, k = {k}, alpha = 1.2)\n"
    );
    peercache_bench::teeln!(
        cli.tee,
        "core neighbors only:                  {none:.3} hops"
    );
    peercache_bench::teeln!(
        cli.tee,
        "only the origin selects (local view): {solo:.3} hops"
    );
    peercache_bench::teeln!(
        cli.tee,
        "every node selects (fleet):           {fleet:.3} hops"
    );
    peercache_bench::teeln!(
        cli.tee,
        "\nthe fleet effect is worth another {:.1}% beyond what the origin's own \
         pointers achieve —\nheadroom the §VII 'globally optimal decentralized \
         algorithm' would reason about explicitly.",
        (solo - fleet) / solo * 100.0
    );
    assert!(solo < none && fleet <= solo + 1e-9);
}
