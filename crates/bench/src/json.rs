//! A minimal JSON reader for the perf-regression gate.
//!
//! The workspace's vendored `serde_json` shim only *serialises*; nothing
//! in the tree can parse JSON back. The `perf_baseline` gate has to read
//! the committed `BENCH_baseline.json`, so this module implements the
//! small recursive-descent parser that needs — the full value grammar the
//! shim's serialiser emits (objects, arrays, strings with escapes,
//! numbers, booleans, null), and nothing more exotic.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, which covers the gate's needs).
    Number(f64),
    /// A string literal.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in source order (duplicate keys keep the first).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parse `text` as a single JSON document.
    ///
    /// # Errors
    /// A human-readable message with a byte offset on malformed input or
    /// trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs don't occur in our own output;
                            // map them (and any invalid scalar) to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!("unknown escape '\\{}'", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input came from &str,
                    // so boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    if let Ok(chunk) = std::str::from_utf8(&self.bytes[start..self.pos]) {
                        out.push_str(chunk);
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Number(-1500.0));
        assert_eq!(
            Json::parse("\"a\\nb\\\"c\"").unwrap(),
            Json::String("a\nb\"c".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc = Json::parse(
            r#"{
              "label": "baseline",
              "kernels": [
                {"kernel": "chord_fast", "ns_per_op": 123.5, "gated": true},
                {"kernel": "fig3", "speedup_vs_serial": null}
              ]
            }"#,
        )
        .unwrap();
        assert_eq!(doc.get("label").and_then(Json::as_str), Some("baseline"));
        let kernels = doc.get("kernels").and_then(Json::as_array).unwrap();
        assert_eq!(kernels.len(), 2);
        assert_eq!(
            kernels[0].get("ns_per_op").and_then(Json::as_f64),
            Some(123.5)
        );
        assert_eq!(kernels[0].get("gated").and_then(Json::as_bool), Some(true));
        assert_eq!(kernels[1].get("speedup_vs_serial"), Some(&Json::Null));
    }

    #[test]
    fn round_trips_the_serialiser_output() {
        #[derive(serde::Serialize)]
        struct Row {
            name: String,
            value: f64,
            flag: bool,
        }
        let body = serde_json::to_string_pretty(&[Row {
            name: "a \"quoted\" name".to_string(),
            value: 0.25,
            flag: false,
        }])
        .unwrap();
        let doc = Json::parse(&body).unwrap();
        let row = &doc.as_array().unwrap()[0];
        assert_eq!(
            row.get("name").and_then(Json::as_str),
            Some("a \"quoted\" name")
        );
        assert_eq!(row.get("value").and_then(Json::as_f64), Some(0.25));
        assert_eq!(row.get("flag").and_then(Json::as_bool), Some(false));
    }

    /// The `memory` section `perf_baseline` emits under `count-allocs`
    /// must survive a serialise → parse round-trip, so future gates can
    /// read committed gauges the way the units gate reads kernels.
    #[test]
    fn round_trips_memory_gauge_sections() {
        #[derive(serde::Serialize)]
        struct MemoryGauge {
            region: String,
            nodes: u64,
            peak_bytes: u64,
            bytes_per_node: f64,
        }
        #[derive(serde::Serialize)]
        struct Doc {
            label: String,
            memory: Vec<MemoryGauge>,
        }
        let body = serde_json::to_string_pretty(&Doc {
            label: "baseline".to_string(),
            memory: vec![MemoryGauge {
                region: "scale_sharded".to_string(),
                nodes: 16_384,
                peak_bytes: 9_650_176,
                bytes_per_node: 589.0,
            }],
        })
        .unwrap();
        let doc = Json::parse(&body).unwrap();
        let memory = doc.get("memory").and_then(Json::as_array).unwrap();
        assert_eq!(memory.len(), 1);
        assert_eq!(
            memory[0].get("region").and_then(Json::as_str),
            Some("scale_sharded")
        );
        assert_eq!(
            memory[0].get("peak_bytes").and_then(Json::as_f64),
            Some(9_650_176.0)
        );
        assert_eq!(
            memory[0].get("bytes_per_node").and_then(Json::as_f64),
            Some(589.0)
        );
    }

    /// The `fig3_scale` report: a nullable `gauge` object whose ceiling
    /// field is itself nullable — both states must parse back.
    #[test]
    fn round_trips_scale_gauge_with_optional_ceiling() {
        #[derive(serde::Serialize)]
        struct Gauge {
            nodes: u64,
            peak_bytes: u64,
            bytes_per_node: f64,
            max_bytes_per_node: Option<u64>,
        }
        #[derive(serde::Serialize)]
        struct Doc {
            gauge: Option<Gauge>,
        }
        let body = serde_json::to_string_pretty(&Doc {
            gauge: Some(Gauge {
                nodes: 100_000,
                peak_bytes: 60_838_117,
                bytes_per_node: 608.4,
                max_bytes_per_node: None,
            }),
        })
        .unwrap();
        let doc = Json::parse(&body).unwrap();
        let gauge = doc.get("gauge").unwrap();
        assert_eq!(
            gauge.get("bytes_per_node").and_then(Json::as_f64),
            Some(608.4)
        );
        assert_eq!(gauge.get("max_bytes_per_node"), Some(&Json::Null));

        let absent = Json::parse(r#"{"gauge": null}"#).unwrap();
        assert_eq!(absent.get("gauge"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("1 2").is_err(), "trailing data");
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            Json::parse("\"\\u00e9\"").unwrap(),
            Json::String("é".to_string())
        );
    }
}
