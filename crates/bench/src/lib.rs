//! Shared plumbing for the figure-regeneration binaries and the Criterion
//! benchmarks: random problem builders and a tiny CLI/report layer.

#![warn(missing_docs)]

#[cfg(feature = "count-allocs")]
pub mod alloc_count;
pub mod json;

use std::io::Write;
use std::path::PathBuf;

use peercache_core::{Candidate, ChordProblem, PastryProblem};
use peercache_id::{Id, IdSpace};
use peercache_sim::{FigureRow, Scale};
use peercache_workload::{random_ids, Zipf};
use rand::rngs::StdRng;
use rand::SeedableRng;

// Rounded log2 of a candidate count is tiny and non-negative, so the
// f64 → usize cast is exact.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn log2(n: usize) -> usize {
    (n as f64).log2().round() as usize
}

/// Build a random Chord selection problem: `n` candidates with Zipf(α)
/// weights, `log₂ n` core fingers at exponentially spaced offsets.
pub fn random_chord_problem(n: usize, k: usize, alpha: f64, seed: u64) -> ChordProblem {
    let space = IdSpace::paper();
    let mut rng = StdRng::seed_from_u64(seed);
    let ids = random_ids(space, n + 1 + 32, &mut rng);
    let source = ids[0];
    let zipf = Zipf::new(n, alpha).expect("valid Zipf");
    let candidates: Vec<Candidate> = ids[1..=n]
        .iter()
        .enumerate()
        .map(|(i, &id)| Candidate::new(id, zipf.rank_probability(i) * 1e6))
        .collect();
    // Core fingers: closest candidate at or after source + 2^i (re-using
    // extra ids so cores never collide with candidates).
    let core: Vec<Id> = ids[n + 1..].iter().copied().take(log2(n)).collect();
    ChordProblem::new(space, source, core, candidates, k).expect("well-formed")
}

/// Build a random Pastry selection problem analogous to
/// [`random_chord_problem`].
pub fn random_pastry_problem(n: usize, k: usize, alpha: f64, seed: u64) -> PastryProblem {
    let space = IdSpace::paper();
    let mut rng = StdRng::seed_from_u64(seed);
    let ids = random_ids(space, n + 1 + 32, &mut rng);
    let source = ids[0];
    let zipf = Zipf::new(n, alpha).expect("valid Zipf");
    let candidates: Vec<Candidate> = ids[1..=n]
        .iter()
        .enumerate()
        .map(|(i, &id)| Candidate::new(id, zipf.rank_probability(i) * 1e6))
        .collect();
    let core: Vec<Id> = ids[n + 1..].iter().copied().take(log2(n)).collect();
    PastryProblem::new(space, 1, source, core, candidates, k).expect("well-formed")
}

/// A writer mirroring a binary's report to stdout **and** to
/// `out/<name>_output.txt`, so recorded outputs live in the gitignored
/// `out/` directory instead of being committed by hand.
pub struct Tee {
    file: std::fs::File,
    path: PathBuf,
}

impl Tee {
    /// Open `out/<name>_output.txt` for mirroring (creating `out/`).
    ///
    /// # Panics
    /// Panics when the output directory or file cannot be created.
    pub fn create(name: &str) -> Self {
        std::fs::create_dir_all("out").expect("create out/ directory");
        let path = PathBuf::from(format!("out/{name}_output.txt"));
        let file = std::fs::File::create(&path).expect("create output file");
        Tee { file, path }
    }

    /// Write one line to stdout and the mirror file.
    ///
    /// # Panics
    /// Panics when the mirror file cannot be written.
    pub fn line(&mut self, text: &str) {
        println!("{text}");
        writeln!(self.file, "{text}").expect("write output file");
    }

    /// Where the mirror is being written.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

/// `println!`-style helper writing through a [`Tee`].
#[macro_export]
macro_rules! teeln {
    ($tee:expr) => { $tee.line("") };
    ($tee:expr, $($arg:tt)*) => { $tee.line(&format!($($arg)*)) };
}

/// Arguments shared by the ad-hoc ablation/extension binaries:
/// `--quick` plus the engine-wide `--threads N`, and a [`Tee`] mirroring
/// the report into `out/`.
pub struct BinArgs {
    /// Run at reduced scale.
    pub quick: bool,
    /// Mirror writer for the binary's report.
    pub tee: Tee,
}

impl BinArgs {
    /// Parse `[--quick] [--threads N]` and open the `out/` mirror.
    ///
    /// # Panics
    /// Panics with a usage message on malformed arguments.
    pub fn parse(name: &str) -> Self {
        let mut quick = false;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => quick = true,
                "--threads" => peercache_par::set_threads(parse_threads(args.next())),
                other => panic!("unknown argument {other}; usage: [--quick] [--threads N]"),
            }
        }
        BinArgs {
            quick,
            tee: Tee::create(name),
        }
    }
}

fn parse_threads(value: Option<String>) -> usize {
    value
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .expect("--threads takes a positive integer")
}

/// CLI options shared by the figure binaries.
pub struct FigureCli {
    /// Experiment scale.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Optional path for a JSON dump of the rows.
    pub json: Option<String>,
}

impl FigureCli {
    /// Parse `--quick`, `--seed N`, `--json PATH`, `--threads N` from
    /// `std::env::args`. `--threads` sets the [`peercache_par`] pool width
    /// for the whole process (results are bit-identical at any width).
    ///
    /// # Panics
    /// Panics with a usage message on malformed arguments (these are
    /// developer-facing binaries).
    pub fn parse() -> Self {
        let mut scale = Scale::paper();
        let mut seed = 1u64;
        let mut json = None;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => scale = Scale::quick(),
                "--seed" => {
                    seed = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .expect("--seed takes an integer");
                }
                "--json" => {
                    json = Some(args.next().expect("--json takes a path"));
                }
                "--threads" => peercache_par::set_threads(parse_threads(args.next())),
                other => {
                    panic!(
                        "unknown argument {other}; usage: [--quick] [--seed N] [--json PATH] [--threads N]"
                    )
                }
            }
        }
        FigureCli { scale, seed, json }
    }

    /// Print the table and optionally dump JSON rows.
    ///
    /// # Panics
    /// Panics when the JSON path cannot be written.
    pub fn report(&self, header: &str, rows: &[FigureRow]) {
        println!("{header}");
        println!("{}", peercache_sim::render_table(rows));
        if let Some(path) = &self.json {
            let mut file = std::fs::File::create(path).expect("create JSON output");
            let body = serde_json::to_string_pretty(rows).expect("rows serialise");
            file.write_all(body.as_bytes()).expect("write JSON output");
            println!("(rows written to {path})");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peercache_core::chord::select_fast;
    use peercache_core::pastry::select_greedy;

    #[test]
    fn random_problems_are_solvable() {
        let p = random_chord_problem(64, 6, 1.2, 3);
        assert_eq!(p.candidates.len(), 64);
        let sel = select_fast(&p).unwrap();
        assert_eq!(sel.aux.len(), 6);

        let p = random_pastry_problem(64, 6, 1.2, 3);
        let sel = select_greedy(&p).unwrap();
        assert_eq!(sel.aux.len(), 6);
    }

    #[test]
    fn problems_are_deterministic_per_seed() {
        let a = random_chord_problem(32, 4, 1.0, 9);
        let b = random_chord_problem(32, 4, 1.0, 9);
        assert_eq!(a.source, b.source);
        assert_eq!(a.candidates.len(), b.candidates.len());
        assert_eq!(a.candidates[0].id, b.candidates[0].id);
    }
}
