//! A counting `#[global_allocator]`, compiled only under the
//! `count-allocs` feature: the system allocator with an atomic call
//! counter in front, so the perf baseline can report allocations per
//! solve and hard-fail when a steady-state workspace kernel touches the
//! heap at all.
//!
//! The counter tallies *calls* (alloc / realloc / alloc_zeroed), not
//! bytes — the zero-alloc contract is about avoiding allocator traffic on
//! the hot path, and a call count is exact where a byte count invites
//! threshold-tuning. Feature-gated because a counting allocator taxes
//! every allocation in the process; timing runs stay on the system
//! allocator unless allocation accounting was asked for.

// The one deliberate unsafe surface of the workspace: implementing
// `GlobalAlloc` requires it. Everything defers to `System`.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

/// The system allocator with an allocation-call counter in front.
struct CountingAlloc;

// SAFETY: every method defers to `System`, which upholds the
// `GlobalAlloc` contract; the counter update has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation calls made by the whole process so far. Subtract two reads
/// to count a region; single-threaded regions count exactly.
pub fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::alloc_calls;

    #[test]
    fn heap_traffic_is_counted() {
        let before = alloc_calls();
        let v: Vec<u64> = Vec::with_capacity(1024);
        std::hint::black_box(&v);
        assert!(alloc_calls() > before, "Vec::with_capacity must be seen");
    }

    #[test]
    fn capacity_reuse_is_free() {
        let mut v: Vec<u64> = Vec::with_capacity(1024);
        let before = alloc_calls();
        for i in 0..1024 {
            v.push(i);
        }
        v.clear();
        for i in 0..1024 {
            v.push(i);
        }
        assert_eq!(alloc_calls(), before, "pushes within capacity are free");
    }
}
