//! A counting `#[global_allocator]`, compiled only under the
//! `count-allocs` feature: the system allocator with atomic call and byte
//! counters in front, so the perf baseline can report allocations per
//! solve, hard-fail when a steady-state workspace kernel touches the heap
//! at all, and gauge the peak live-heap footprint of the sharded
//! simulation (the bytes-per-node memory gauge).
//!
//! Two views, two contracts:
//!
//! * **calls** — the zero-alloc gate counts *calls* (alloc / realloc /
//!   alloc_zeroed), not bytes: avoiding allocator traffic on the hot path
//!   is exact where a byte threshold invites tuning.
//! * **bytes** — the memory gauge tracks live bytes (allocated minus
//!   freed) and their high-water mark, a peak-RSS proxy that is
//!   deterministic for a single-threaded region where RSS itself is not.
//!
//! Feature-gated because a counting allocator taxes every allocation in
//! the process; timing runs stay on the system allocator unless
//! allocation accounting was asked for.

// The one deliberate unsafe surface of the workspace: implementing
// `GlobalAlloc` requires it. Everything defers to `System`.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static BYTES_IN_USE: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

/// Raise the high-water mark to at least `current`.
fn update_peak(current: u64) {
    PEAK_BYTES.fetch_max(current, Ordering::Relaxed);
}

/// The system allocator with allocation-call and live-byte counters in
/// front.
struct CountingAlloc;

// SAFETY: every method defers to `System`, which upholds the
// `GlobalAlloc` contract; the counter updates have no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        let size = layout.size() as u64;
        update_peak(BYTES_IN_USE.fetch_add(size, Ordering::Relaxed) + size);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        let size = layout.size() as u64;
        update_peak(BYTES_IN_USE.fetch_add(size, Ordering::Relaxed) + size);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        let (old, new) = (layout.size() as u64, new_size as u64);
        // Grow before shrink keeps the counter's transient state an
        // over- rather than under-estimate.
        let now = BYTES_IN_USE.fetch_add(new, Ordering::Relaxed) + new;
        update_peak(now);
        BYTES_IN_USE.fetch_sub(old, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        BYTES_IN_USE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation calls made by the whole process so far. Subtract two reads
/// to count a region; single-threaded regions count exactly.
pub fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Heap bytes currently live (allocated and not yet freed), process-wide.
pub fn bytes_in_use() -> u64 {
    BYTES_IN_USE.load(Ordering::Relaxed)
}

/// The live-byte high-water mark since process start or the last
/// [`reset_peak`].
pub fn peak_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// Rebase the high-water mark to the current live-byte count, so a gauge
/// region measures *its own* peak: `reset_peak(); work(); peak_bytes()`
/// reports the ceiling the region reached, pre-existing state included.
pub fn reset_peak() {
    PEAK_BYTES.store(BYTES_IN_USE.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::{alloc_calls, bytes_in_use, peak_bytes, reset_peak};

    #[test]
    fn heap_traffic_is_counted() {
        let before = alloc_calls();
        let v: Vec<u64> = Vec::with_capacity(1024);
        std::hint::black_box(&v);
        assert!(alloc_calls() > before, "Vec::with_capacity must be seen");
    }

    #[test]
    fn capacity_reuse_is_free() {
        let mut v: Vec<u64> = Vec::with_capacity(1024);
        let before = alloc_calls();
        for i in 0..1024 {
            v.push(i);
        }
        v.clear();
        for i in 0..1024 {
            v.push(i);
        }
        assert_eq!(alloc_calls(), before, "pushes within capacity are free");
    }

    #[test]
    fn live_bytes_rise_and_fall() {
        let before = bytes_in_use();
        let v: Vec<u8> = Vec::with_capacity(1 << 16);
        assert!(
            bytes_in_use() >= before + (1 << 16),
            "a live 64 KiB buffer is visible"
        );
        drop(v);
        assert!(
            bytes_in_use() < before + (1 << 16),
            "freed bytes leave the live count"
        );
    }

    #[test]
    fn peak_tracks_the_high_water_mark() {
        reset_peak();
        let baseline = peak_bytes();
        {
            let v: Vec<u8> = Vec::with_capacity(1 << 20);
            std::hint::black_box(&v);
        }
        // The buffer is gone, but the peak remembers it.
        assert!(
            peak_bytes() >= baseline + (1 << 20),
            "peak saw the transient 1 MiB buffer"
        );
        reset_peak();
        assert!(
            peak_bytes() < baseline + (1 << 20),
            "reset rebases the peak to current live bytes"
        );
    }
}
