//! Overlay routing throughput: lookups per second through stable Chord
//! and Pastry rings, with and without auxiliary neighbors installed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peercache_id::{Id, IdSpace};
use peercache_pastry::RoutingMode;
use peercache_sim::{OverlayKind, SimOverlay};
use peercache_workload::random_ids;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build(kind: OverlayKind, n: usize) -> (SimOverlay, Vec<Id>) {
    let space = IdSpace::paper();
    let mut rng = StdRng::seed_from_u64(17);
    let ids = random_ids(space, n, &mut rng);
    let overlay = SimOverlay::build(kind, space, &ids, &mut rng);
    (overlay, ids)
}

fn routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    let kinds = [
        ("chord", OverlayKind::Chord),
        (
            "pastry",
            OverlayKind::Pastry {
                digit_bits: 1,
                mode: RoutingMode::LocalityAware,
            },
        ),
    ];
    for (name, kind) in kinds {
        for &n in &[1024usize, 4096] {
            let (mut overlay, ids) = build(kind, n);
            let mut rng = StdRng::seed_from_u64(19);
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| {
                    let from = ids[rng.gen_range(0..ids.len())];
                    let key = Id::new(u128::from(rng.gen::<u32>()));
                    overlay.query(from, key)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, routing);
criterion_main!(benches);
