//! Ablation (paper §V): the fast `O(n·(b + k·log b)·log n)` Chord solver
//! against the reference `O(n²·k)` dynamic program, plus the Pastry greedy
//! vs the `O(n·k²·b)` reference DP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peercache_bench::{random_chord_problem, random_pastry_problem};
use peercache_core::chord::{select_fast, select_naive};
use peercache_core::pastry::{select_dp, select_greedy};

fn chord_fast_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("chord_fast_vs_naive");
    for &n in &[128usize, 512, 2048] {
        let k = (n as f64).log2().round() as usize;
        let problem = random_chord_problem(n, k, 1.2, 13);
        group.bench_with_input(BenchmarkId::new("fast", n), &problem, |b, p| {
            b.iter(|| select_fast(p).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &problem, |b, p| {
            b.iter(|| select_naive(p).unwrap());
        });
    }
    group.finish();
}

fn pastry_greedy_vs_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("pastry_greedy_vs_dp");
    for &n in &[128usize, 512] {
        let k = (n as f64).log2().round() as usize;
        let problem = random_pastry_problem(n, k, 1.2, 13);
        group.bench_with_input(BenchmarkId::new("greedy", n), &problem, |b, p| {
            b.iter(|| select_greedy(p).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("reference_dp", n), &problem, |b, p| {
            b.iter(|| select_dp(p).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, chord_fast_vs_naive, pastry_greedy_vs_dp);
criterion_main!(benches);
