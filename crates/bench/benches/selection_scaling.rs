//! Complexity-claim benchmarks (paper §I, contribution 1): selection cost
//! scaling with `n` for the production solvers — `O(n·k·b)` Pastry greedy
//! and `O(n·(b + k·log b)·log n)` Chord fast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peercache_bench::{random_chord_problem, random_pastry_problem};
use peercache_core::chord::select_fast;
use peercache_core::pastry::select_greedy;

fn selection_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection_scaling");
    for &n in &[256usize, 1024, 4096] {
        let k = (n as f64).log2().round() as usize;
        let chord = random_chord_problem(n, k, 1.2, 7);
        group.bench_with_input(BenchmarkId::new("chord_fast", n), &chord, |b, p| {
            b.iter(|| select_fast(p).unwrap());
        });
        let pastry = random_pastry_problem(n, k, 1.2, 7);
        group.bench_with_input(BenchmarkId::new("pastry_greedy", n), &pastry, |b, p| {
            b.iter(|| select_greedy(p).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, selection_scaling);
criterion_main!(benches);
