//! Ablation (paper §IV-C): the `O(k·b)` incremental update against a full
//! `O(n·k·b)` from-scratch re-solve after a single popularity change.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peercache_bench::random_pastry_problem;
use peercache_core::pastry::{select_greedy, PastryOptimizer};

fn incremental_vs_scratch(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental");
    for &n in &[256usize, 1024, 4096] {
        let k = (n as f64).log2().round() as usize;
        let problem = random_pastry_problem(n, k, 1.2, 11);
        let target = problem.candidates[n / 2].id;

        group.bench_with_input(
            BenchmarkId::new("incremental_update", n),
            &problem,
            |b, p| {
                let mut opt = PastryOptimizer::new(p).unwrap();
                let mut w = 1.0;
                b.iter(|| {
                    w += 1.0;
                    opt.update_weight(target, w).unwrap();
                    opt.select().unwrap()
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("from_scratch", n), &problem, |b, p| {
            let mut p = p.clone();
            let mut w = 1.0;
            b.iter(|| {
                w += 1.0;
                p.candidates
                    .iter_mut()
                    .find(|c| c.id == target)
                    .unwrap()
                    .weight = w;
                select_greedy(&p).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, incremental_vs_scratch);
criterion_main!(benches);
