//! Completeness self-test for the rule catalogue: every rule in
//! `ALL_RULES` must carry a non-empty `--explain` entry that names
//! itself, a one-line `short_desc`, a `name()`/`parse()` round-trip,
//! and a row in the README rule table. Adding rule L15 without wiring
//! its documentation fails here, not in review.

use peercache_lint::{Rule, ALL_RULES};

#[test]
fn the_catalogue_holds_exactly_the_fourteen_rules() {
    assert_eq!(ALL_RULES.len(), 14);
    for n in 1..=14 {
        let name = format!("L{n}");
        assert!(
            ALL_RULES.iter().any(|r| r.name() == name),
            "rule {name} missing from ALL_RULES"
        );
    }
}

#[test]
fn every_rule_name_round_trips_through_parse() {
    for rule in ALL_RULES {
        assert_eq!(
            Rule::parse(rule.name()),
            Some(rule),
            "parse({}) does not round-trip",
            rule.name()
        );
    }
    assert_eq!(Rule::parse("L15"), None);
    assert_eq!(Rule::parse("l1"), None);
}

#[test]
fn every_rule_has_a_self_naming_explain_entry_and_short_desc() {
    for rule in ALL_RULES {
        let explain = rule.explain();
        assert!(
            explain.len() > 80,
            "{} explain entry is too thin to be useful",
            rule.name()
        );
        assert!(
            explain.starts_with(&format!("{} — ", rule.name())),
            "{} explain entry must open by naming its rule: {:?}",
            rule.name(),
            &explain[..explain.len().min(40)]
        );
        assert!(
            !rule.short_desc().is_empty(),
            "{} has no short_desc",
            rule.name()
        );
    }
}

#[test]
fn every_rule_has_a_readme_table_row() {
    let readme = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md"));
    for rule in ALL_RULES {
        let row = format!("| {} |", rule.name());
        assert!(
            readme.contains(&row),
            "README rule table is missing a row for {}",
            rule.name()
        );
    }
}
