//! Edge-case coverage for the pass-4 CFG builder (`crates/lint/src/cfg.rs`),
//! asserted through the public dataflow API: each fixture is a single
//! `crates/sim` file run through `check_dataflow` with no roots, so the
//! assertions pin the *observable* L12 semantics — which shapes report a
//! draw divergence, and which must degrade silently — rather than block
//! layout internals.

use peercache_lint::items::{parse_items, tokenize};
use peercache_lint::scan::scan;
use peercache_lint::{check_dataflow, CallGraph, Rule, Violation};

/// Run pass 4 (no roots) over one fixture file placed in `crates/sim`
/// and return the L12 violations.
fn l12(src: &str) -> Vec<Violation> {
    let lines = scan(src);
    let toks = tokenize(&lines);
    let items = parse_items(&toks);
    let files = vec![("crates/sim/src/fixture.rs".to_string(), items, toks)];
    let graph = CallGraph::build(&files);
    check_dataflow(&graph, &files, &[])
        .expect("no roots, no root errors")
        .into_iter()
        .map(|(_, v)| v)
        .filter(|v| v.rule == Rule::L12)
        .collect()
}

#[test]
fn balanced_if_else_is_clean() {
    let found = l12("use rand::Rng;\n\
         pub fn pick<R: Rng + ?Sized>(cond: bool, rng: &mut R) -> u64 {\n\
             if cond {\n\
                 rng.gen()\n\
             } else {\n\
                 rng.gen()\n\
             }\n\
         }\n");
    assert!(
        found.is_empty(),
        "balanced branches must not fire: {found:?}"
    );
}

#[test]
fn imbalanced_if_reports_divergence() {
    let found = l12("use rand::Rng;\n\
         pub fn pick<R: Rng + ?Sized>(cond: bool, rng: &mut R) -> u64 {\n\
             let mut x = 0;\n\
             if cond {\n\
                 x = rng.gen();\n\
             }\n\
             x\n\
         }\n");
    assert_eq!(found.len(), 1, "one merge diverges: {found:?}");
    assert!(found[0].message.contains("0 vs 1"), "{}", found[0].message);
    assert!(
        found[0].flow.len() >= 2,
        "L12 findings carry an intraprocedural flow: {:?}",
        found[0].flow
    );
}

#[test]
fn nested_match_with_guards_balanced_is_clean() {
    // Both outer arms draw exactly once, including through a nested
    // match with a guard; the guard draw itself is arm-local but every
    // path through the nested match consumes one draw.
    let found = l12("use rand::Rng;\n\
         pub fn walk<R: Rng + ?Sized>(mode: u8, sub: u8, rng: &mut R) -> u64 {\n\
             match mode {\n\
                 0 => match sub {\n\
                     s if s > 3 => rng.gen(),\n\
                     _ => rng.gen(),\n\
                 },\n\
                 _ => rng.gen(),\n\
             }\n\
         }\n");
    assert!(
        found.is_empty(),
        "balanced nested match must not fire: {found:?}"
    );
}

#[test]
fn nested_match_with_guard_drawing_in_one_arm_reports() {
    let found = l12("use rand::Rng;\n\
         pub fn walk<R: Rng + ?Sized>(mode: u8, rng: &mut R) -> u64 {\n\
             match mode {\n\
                 0 => rng.gen::<u64>() + rng.gen::<u64>(),\n\
                 1 => rng.gen(),\n\
                 _ => 0,\n\
             }\n\
         }\n");
    assert_eq!(found.len(), 1, "arm draw counts 2/1/0 diverge: {found:?}");
    assert!(
        found[0].message.contains("0 vs 1 vs 2"),
        "{}",
        found[0].message
    );
}

#[test]
fn loop_draws_widen_silently() {
    // Draw count depends on the trip count — a loop fact, not branch
    // divergence. The lattice widens to Unknown and stays silent.
    let found = l12("use rand::Rng;\n\
         pub fn sample<R: Rng + ?Sized>(n: usize, rng: &mut R) -> u64 {\n\
             let mut acc = 0u64;\n\
             for _ in 0..n {\n\
                 acc = acc.wrapping_add(rng.gen::<u64>());\n\
             }\n\
             acc\n\
         }\n");
    assert!(
        found.is_empty(),
        "loop-carried draws must widen, not fire: {found:?}"
    );
}

#[test]
fn break_with_value_carries_its_draw() {
    // `break rng.gen()` draws before leaving the loop; the loop header
    // widens, so no divergence is reported either way — the test pins
    // that break-with-value parses and terminates.
    let found = l12("use rand::Rng;\n\
         pub fn first<R: Rng + ?Sized>(rng: &mut R) -> u64 {\n\
             let v = loop {\n\
                 break rng.gen();\n\
             };\n\
             v\n\
         }\n");
    assert!(found.is_empty(), "{found:?}");
}

#[test]
fn labeled_break_crosses_loop_levels() {
    // The labeled break jumps out of both loops; draw counts are
    // loop-carried (Unknown), so nothing may fire — and the builder
    // must resolve the label to the *outer* loop without panicking.
    let found = l12("use rand::Rng;\n\
         pub fn scan<R: Rng + ?Sized>(n: usize, rng: &mut R) -> u64 {\n\
             let mut acc = 0u64;\n\
             'outer: for _ in 0..n {\n\
                 for _ in 0..n {\n\
                     if acc > 100 {\n\
                         break 'outer;\n\
                     }\n\
                     acc = acc.wrapping_add(rng.gen::<u64>());\n\
                 }\n\
             }\n\
             acc\n\
         }\n");
    assert!(found.is_empty(), "{found:?}");
}

#[test]
fn question_mark_on_option_is_an_early_exit_edge() {
    // The `?` path leaves with 0 draws, the fall-through path draws
    // once: the exit merge diverges — exactly the silent-stream-skew
    // class L12 exists for.
    let found = l12("use rand::Rng;\n\
         pub fn lookup<R: Rng + ?Sized>(slot: Option<u32>, rng: &mut R) -> Option<u64> {\n\
             let x = slot?;\n\
             let jitter: u64 = rng.gen();\n\
             Some(jitter + u64::from(x))\n\
         }\n");
    assert_eq!(found.len(), 1, "Option `?` divergence must fire: {found:?}");
    assert!(found[0].message.contains("0 vs 1"), "{}", found[0].message);
}

#[test]
fn question_mark_on_result_is_an_early_exit_edge() {
    let found = l12("use rand::Rng;\n\
         pub fn lookup<R: Rng + ?Sized>(slot: Result<u32, u8>, rng: &mut R) -> Result<u64, u8> {\n\
             let x = slot?;\n\
             let jitter: u64 = rng.gen();\n\
             Ok(jitter + u64::from(x))\n\
         }\n");
    assert_eq!(found.len(), 1, "Result `?` divergence must fire: {found:?}");
}

#[test]
fn question_mark_after_balanced_draws_is_clean() {
    // Every exit — early or fall-through — has consumed the same one
    // draw, so `?` alone must not fire.
    let found = l12("use rand::Rng;\n\
         pub fn lookup<R: Rng + ?Sized>(slot: Option<u32>, rng: &mut R) -> Option<u64> {\n\
             let jitter: u64 = rng.gen();\n\
             let x = slot?;\n\
             Some(jitter + u64::from(x))\n\
         }\n");
    assert!(found.is_empty(), "balanced `?` must not fire: {found:?}");
}

#[test]
fn macro_opaque_statements_degrade_to_unknown_never_a_false_count() {
    // A macro consuming the RNG has an unknowable draw count: the arm
    // it sits in widens to Unknown, which must suppress the report even
    // though the other arm has a Known count — degrading must never
    // manufacture a false draw-count.
    let found = l12("use rand::Rng;\n\
         pub fn opaque<R: Rng + ?Sized>(cond: bool, rng: &mut R) -> u64 {\n\
             if cond {\n\
                 mystery_draws!(rng)\n\
             } else {\n\
                 rng.gen()\n\
             }\n\
         }\n");
    assert!(
        found.is_empty(),
        "macro-opaque arms must widen, not fire: {found:?}"
    );
}

#[test]
fn macros_not_touching_the_rng_have_no_effect() {
    let found = l12("use rand::Rng;\n\
         pub fn log_and_draw<R: Rng + ?Sized>(cond: bool, rng: &mut R) -> u64 {\n\
             if cond {\n\
                 debug_assert!(cond, \"still set\");\n\
                 rng.gen()\n\
             } else {\n\
                 rng.gen()\n\
             }\n\
         }\n");
    assert!(found.is_empty(), "{found:?}");
}

#[test]
fn closures_touching_the_rng_widen() {
    // `map(|_| rng.gen())` runs a data-dependent number of times; the
    // closure degrades to an unknown draw, suppressing any report.
    let found = l12("use rand::Rng;\n\
         pub fn jitter_all<R: Rng + ?Sized>(cond: bool, xs: &mut [u64], rng: &mut R) {\n\
             if cond {\n\
                 for x in xs.iter_mut() {\n\
                     *x = rng.gen();\n\
                 }\n\
             } else {\n\
                 xs.iter_mut().for_each(|x| *x = rng.gen());\n\
             }\n\
         }\n");
    assert!(
        found.is_empty(),
        "closure draws must widen, not fire: {found:?}"
    );
}

#[test]
fn early_return_with_differing_draws_reports_at_the_exit() {
    let found = l12("use rand::Rng;\n\
         pub fn shortcut<R: Rng + ?Sized>(cond: bool, rng: &mut R) -> u64 {\n\
             if cond {\n\
                 return 7;\n\
             }\n\
             rng.gen()\n\
         }\n");
    assert_eq!(found.len(), 1, "early return skips the draw: {found:?}");
}

#[test]
fn rng_forwarding_calls_use_callee_summaries() {
    // Both arms call a helper that draws exactly once — balance holds
    // *through* the call graph, so nothing may fire; a third function
    // whose arms call helpers with different counts must fire.
    let clean = l12("use rand::Rng;\n\
         fn one<R: Rng + ?Sized>(rng: &mut R) -> u64 { rng.gen() }\n\
         pub fn via_calls<R: Rng + ?Sized>(cond: bool, rng: &mut R) -> u64 {\n\
             if cond { one(rng) } else { one(rng) }\n\
         }\n");
    assert!(clean.is_empty(), "{clean:?}");

    let dirty = l12("use rand::Rng;\n\
         fn one<R: Rng + ?Sized>(rng: &mut R) -> u64 { rng.gen() }\n\
         fn two<R: Rng + ?Sized>(rng: &mut R) -> u64 { rng.gen::<u64>() + rng.gen::<u64>() }\n\
         pub fn via_calls<R: Rng + ?Sized>(cond: bool, rng: &mut R) -> u64 {\n\
             if cond { one(rng) } else { two(rng) }\n\
         }\n");
    assert_eq!(
        dirty
            .iter()
            .filter(|v| v.message.contains("via_calls"))
            .count(),
        1,
        "callee summaries must propagate: {dirty:?}"
    );
}

#[test]
fn functions_outside_deterministic_crates_are_exempt() {
    let lines = scan(
        "use rand::Rng;\n\
         pub fn pick<R: Rng + ?Sized>(cond: bool, rng: &mut R) -> u64 {\n\
             if cond { rng.gen() } else { 0 }\n\
         }\n",
    );
    let toks = tokenize(&lines);
    let items = parse_items(&toks);
    let files = vec![("crates/bench/src/fixture.rs".to_string(), items, toks)];
    let graph = CallGraph::build(&files);
    let found = check_dataflow(&graph, &files, &[]).expect("no roots");
    assert!(
        found.is_empty(),
        "bench crate is outside L12 scope: {found:?}"
    );
}
