//! Fixture tests for the lint engine: each case feeds a small synthetic
//! source file through [`peercache_lint::check`] and asserts exactly
//! which rules fire on which lines — in particular that occurrences
//! inside strings, comments, doc-test fences and `#[cfg(test)]` modules
//! never do.

use std::sync::atomic::{AtomicUsize, Ordering};

use peercache_lint::{check, Allowlist, FileCtx, FileKind, Rule};

fn ctx(path: &str) -> FileCtx {
    FileCtx::classify(path)
}

fn fired(path: &str, source: &str) -> Vec<(usize, Rule)> {
    check(&ctx(path), source)
        .into_iter()
        .map(|v| (v.line, v.rule))
        .collect()
}

#[test]
fn classification_by_path() {
    assert_eq!(ctx("crates/core/src/lib.rs").kind, FileKind::Lib);
    assert_eq!(ctx("src/lib.rs").kind, FileKind::Lib);
    assert_eq!(ctx("crates/id/tests/ring_boundary.rs").kind, FileKind::Test);
    assert_eq!(ctx("crates/bench/src/lib.rs").kind, FileKind::Bench);
    assert_eq!(ctx("crates/core/benches/solvers.rs").kind, FileKind::Bench);
    assert_eq!(ctx("examples/quickstart.rs").kind, FileKind::Example);
    assert_eq!(ctx("vendor/rand/src/lib.rs").kind, FileKind::Vendor);
}

#[test]
fn l1_flags_unwrap_expect_and_panicking_macros() {
    let src = "fn f(x: Option<u8>) -> u8 {\n\
               let a = x.unwrap();\n\
               let b = x.expect(\"reason\");\n\
               if a > b { panic!(\"boom\") }\n\
               todo!()\n\
               }\n\
               fn g() { unimplemented!() }\n";
    let hits = fired("crates/sim/src/lib.rs", src);
    assert_eq!(
        hits,
        vec![
            (2, Rule::L1),
            (3, Rule::L1),
            (4, Rule::L1),
            (5, Rule::L1),
            (7, Rule::L1)
        ]
    );
}

#[test]
fn l1_ignores_lookalike_identifiers() {
    // unwrap_or / expect_err are different methods; a fn named `expect`
    // being *defined* (not `.`-called) is not a violation either.
    let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n\
               fn expect(e: u8) -> u8 { e }\n\
               fn g(x: Result<u8, u8>) -> u8 { x.expect_err(\"no\") }\n";
    assert!(fired("crates/sim/src/lib.rs", src).is_empty());
}

#[test]
fn l1_skips_strings_comments_and_doc_tests() {
    let src = "// a comment may say x.unwrap() freely\n\
               /* block comments too: panic!(\"no\") */\n\
               /// Doc text mentioning .unwrap() and todo!().\n\
               /// ```\n\
               /// let v = Some(1).unwrap(); // doc-test code is exempt\n\
               /// panic!(\"doc tests may panic\");\n\
               /// ```\n\
               fn f() -> &'static str {\n\
               \"strings may say .unwrap() or unimplemented!()\"\n\
               }\n";
    assert!(fired("crates/sim/src/lib.rs", src).is_empty());
}

#[test]
fn l1_skips_raw_strings_with_hashes() {
    let src = "fn f() -> &'static str {\n\
               r#\"raw strings: .unwrap() and \"quoted\" panic!()\"#\n\
               }\n\
               fn g() -> &'static [u8] {\n\
               br##\"byte raw: .expect(\"x\")\"##\n\
               }\n";
    assert!(fired("crates/sim/src/lib.rs", src).is_empty());
}

#[test]
fn l1_skips_cfg_test_modules_but_resumes_after() {
    let src = "fn ok() {}\n\
               #[cfg(test)]\n\
               mod tests {\n\
               #[test]\n\
               fn t() { Some('{').unwrap(); panic!(\"fine in tests\") }\n\
               }\n\
               fn bad(x: Option<u8>) -> u8 { x.unwrap() }\n";
    // The '{' char literal inside the test module must not derail the
    // brace tracking that ends the exempt region.
    assert_eq!(fired("crates/sim/src/lib.rs", src), vec![(7, Rule::L1)]);
}

#[test]
fn l1_exempt_outside_library_code() {
    let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    assert!(fired("crates/core/tests/props.rs", src).is_empty());
    assert!(fired("crates/bench/src/lib.rs", src).is_empty());
    assert!(fired("examples/quickstart.rs", src).is_empty());
    assert!(fired("vendor/rand/src/lib.rs", src).is_empty());
    assert_eq!(fired("crates/core/src/lib.rs", src), vec![(1, Rule::L1)]);
}

#[test]
fn l2_flags_bare_numeric_casts_in_id_and_core_only() {
    let src = "fn f(x: u64) -> usize { x as usize }\n";
    assert_eq!(fired("crates/id/src/id.rs", src), vec![(1, Rule::L2)]);
    assert_eq!(fired("crates/core/src/cost.rs", src), vec![(1, Rule::L2)]);
    assert!(fired("crates/chord/src/network.rs", src).is_empty());
}

#[test]
fn l2_ignores_import_renames_and_test_code() {
    let src = "use std::fmt::Debug as D;\n\
               #[cfg(test)]\n\
               mod tests {\n\
               fn t(x: u64) -> u32 { x as u32 }\n\
               }\n";
    assert!(fired("crates/id/src/id.rs", src).is_empty());
}

#[test]
fn l3_flags_unsafe_everywhere_even_in_tests() {
    let src = "#[cfg(test)]\n\
               mod tests {\n\
               fn t() { unsafe { core::hint::unreachable_unchecked() } }\n\
               }\n";
    assert_eq!(fired("crates/sim/src/lib.rs", src), vec![(3, Rule::L3)]);
    assert_eq!(
        fired("vendor/rand/src/lib.rs", src),
        vec![(3, Rule::L3)],
        "vendor code is exempt from style rules but not from L3"
    );
    // …but not inside a string.
    let quoted = "fn f() -> &'static str { \"unsafe\" }\n";
    assert!(fired("crates/sim/src/lib.rs", quoted).is_empty());
}

#[test]
fn l4_requires_docs_on_pub_fn_and_struct() {
    let src = "pub fn undocumented() {}\n\
               \n\
               /// Documented.\n\
               pub fn documented() {}\n\
               \n\
               /// Documented through an attribute stack.\n\
               #[derive(Debug)]\n\
               pub struct Ok1;\n\
               \n\
               pub struct Bare;\n\
               \n\
               pub(crate) fn internal() {}\n\
               \n\
               /** Block-doc also counts. */\n\
               pub const fn constant() {}\n\
               \n\
               pub const UNDOC_CONST: u8 = 0;\n";
    let hits = fired("crates/id/src/id.rs", src);
    assert_eq!(
        hits,
        vec![(1, Rule::L4), (10, Rule::L4)],
        "only fn/struct items without docs fire; pub(crate) and consts do not"
    );
}

#[test]
fn l4_applies_to_id_freq_core_library_code_only() {
    let src = "pub fn undocumented() {}\n";
    assert_eq!(fired("crates/freq/src/lib.rs", src), vec![(1, Rule::L4)]);
    assert!(fired("crates/sim/src/lib.rs", src).is_empty());
    assert!(fired("crates/id/tests/t.rs", src).is_empty());
}

#[test]
fn l5_flags_wall_clock_reads_outside_bench() {
    let src = "use std::time::Instant;\n\
               fn f() { let _t = Instant::now(); }\n";
    assert_eq!(
        fired("crates/sim/src/lib.rs", src),
        vec![(1, Rule::L5), (2, Rule::L5)]
    );
    assert!(fired("crates/bench/src/lib.rs", src).is_empty());
    let sys = "fn f() -> std::time::SystemTime { std::time::SystemTime::now() }\n";
    assert_eq!(
        fired("crates/workload/src/lib.rs", sys),
        vec![(1, Rule::L5), (1, Rule::L5)]
    );
}

#[test]
fn l5_covers_the_par_crate_as_library_code() {
    // The thread pool must never read the wall clock (its determinism
    // contract would quietly erode) and carries a zero lint.allow budget:
    // classify it as plain Lib so L1 and L5 both scan it.
    assert_eq!(ctx("crates/par/src/pool.rs").kind, FileKind::Lib);
    let src = "use std::time::Instant;\n\
               fn f() { let _t = Instant::now(); }\n";
    assert_eq!(
        fired("crates/par/src/pool.rs", src),
        vec![(1, Rule::L5), (2, Rule::L5)]
    );
    let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    assert_eq!(fired("crates/par/src/seed.rs", src), vec![(1, Rule::L1)]);
}

#[test]
fn scanner_raw_strings_with_many_hashes_terminate_correctly() {
    // A `"##` inside an `r###"…"###` literal must not close it early —
    // otherwise the trailing text would leak back into scanned code and
    // the real unwrap after the fn would be the second hit, not the
    // first.
    let src = "fn f() -> &'static str {\n\
               r###\"inner \"## quote then .unwrap()\"###\n\
               }\n\
               fn g(x: Option<u8>) -> u8 { x.unwrap() }\n";
    assert_eq!(fired("crates/sim/src/lib.rs", src), vec![(4, Rule::L1)]);
}

#[test]
fn scanner_tracks_nested_block_comments() {
    // Rust block comments nest: the inner `*/` must not end the outer
    // comment, and code resumes only after the second `*/`.
    let src = "/* outer /* inner panic!(\"x\") */ still comment .unwrap() */\n\
               fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    assert_eq!(fired("crates/sim/src/lib.rs", src), vec![(2, Rule::L1)]);
}

#[test]
fn scanner_char_literal_escapes_do_not_blank_code() {
    // An escaped quote or backslash inside a char literal must not make
    // the scanner believe a string is still open on the rest of the line.
    let src = "fn f(x: Option<u8>) -> u8 {\n\
               let _q = '\\'';\n\
               let _b = '\\\\';\n\
               x.unwrap()\n\
               }\n";
    assert_eq!(fired("crates/sim/src/lib.rs", src), vec![(4, Rule::L1)]);
}

#[test]
fn scanner_raw_identifiers_do_not_derail_tokens() {
    // `r#type` is one identifier, not the raw-string opener `r#"`.
    let src = "fn f(r#type: Option<u8>) -> u8 { r#type.unwrap() }\n";
    assert_eq!(fired("crates/sim/src/lib.rs", src), vec![(1, Rule::L1)]);
}

#[test]
fn lifetimes_are_not_mistaken_for_char_literals() {
    // If the scanner blanked from `'a` onwards, the unwrap would vanish.
    let src = "fn f<'a>(x: &'a Option<u8>) -> u8 { x.unwrap() }\n";
    assert_eq!(fired("crates/sim/src/lib.rs", src), vec![(1, Rule::L1)]);
}

#[test]
fn allowlist_budgets_parse_and_apply() {
    let allow = Allowlist::parse(
        "# comment\n\
         \n\
         L1 crates/core/src/cast.rs 4\n\
         L4 crates/id/src/id.rs 1\n",
    )
    .expect("well-formed allowlist");
    assert_eq!(allow.budget(Rule::L1, "crates/core/src/cast.rs"), 4);
    assert_eq!(allow.budget(Rule::L4, "crates/id/src/id.rs"), 1);
    assert_eq!(allow.budget(Rule::L1, "crates/core/src/cost.rs"), 0);
    assert_eq!(allow.budget(Rule::L2, "crates/core/src/cast.rs"), 0);
}

#[test]
fn allowlist_rejects_malformed_lines() {
    for bad in [
        "L15 some/path.rs 1",
        "L1 some/path.rs",
        "L1 some/path.rs x",
        "L1 some/path.rs 1 extra",
        "L1 a.rs 1\nL1 a.rs 2",
    ] {
        assert!(Allowlist::parse(bad).is_err(), "accepted: {bad}");
    }
}

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A throw-away workspace directory for `lint_root` integration tests.
struct TempWorkspace {
    root: std::path::PathBuf,
}

impl TempWorkspace {
    fn new() -> TempWorkspace {
        let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let root = std::env::temp_dir().join(format!(
            "peercache-lint-fixture-{}-{seq}",
            std::process::id()
        ));
        std::fs::create_dir_all(&root).expect("create temp workspace");
        TempWorkspace { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("create parent dirs");
        }
        std::fs::write(path, content).expect("write fixture file");
    }
}

impl Drop for TempWorkspace {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn lint_root_fails_over_budget_and_passes_within() {
    let ws = TempWorkspace::new();
    ws.write("Cargo.toml", "[workspace]\n");
    ws.write(
        "crates/demo/src/lib.rs",
        "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
    );

    let report = peercache_lint::lint_root(&ws.root).expect("lintable tree");
    assert!(!report.ok(), "unbudgeted violation must fail");
    assert_eq!(report.violations, 1);
    assert!(
        report.diagnostics[0].starts_with("crates/demo/src/lib.rs:1: L1:"),
        "diagnostic format: {}",
        report.diagnostics[0]
    );

    ws.write("lint.allow", "L1 crates/demo/src/lib.rs 1\n");
    let report = peercache_lint::lint_root(&ws.root).expect("lintable tree");
    assert!(report.ok(), "budgeted violation must pass: {report:?}");
    assert!(report.notes.is_empty());
}

#[test]
fn lint_root_fails_stale_budgets() {
    // Both staleness classes — a budget whose path left the tree and a
    // budget whose violations all burned down — are hard errors, not
    // notes: a rotting entry would mask a regression up to its size.
    let ws = TempWorkspace::new();
    ws.write("Cargo.toml", "[workspace]\n");
    ws.write("crates/demo/src/lib.rs", "fn f() {}\n");
    ws.write("lint.allow", "L1 crates/demo/src/lib.rs 2\nL3 gone.rs 1\n");
    let report = peercache_lint::lint_root(&ws.root).expect("lintable tree");
    assert!(!report.ok(), "stale budgets must fail: {report:?}");
    assert_eq!(
        report
            .diagnostics
            .iter()
            .filter(|d| d.contains("stale entry"))
            .count(),
        2,
        "{report:?}"
    );
}
