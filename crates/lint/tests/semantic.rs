//! Tests for the semantic pass: the item tree and symbol table behind
//! rule L7, the determinism rules L6 and L8, the SARIF emitter (parsed
//! back with `peercache-bench`'s JSON reader), and the self-lint gate
//! that keeps `crates/lint` and `crates/par` at a zero allowlist budget.

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};

use peercache_bench::json::Json;
use peercache_lint::items::{parse_items, tokenize, ItemKind, Visibility};
use peercache_lint::sarif::SARIF_VERSION;
use peercache_lint::scan::scan;
use peercache_lint::symbols::{PubDef, SymbolTable};
use peercache_lint::{check, lint_root, to_sarif, FileCtx, Finding, Rule};

fn fired(path: &str, source: &str) -> Vec<(usize, Rule)> {
    check(&FileCtx::classify(path), source)
        .into_iter()
        .map(|v| (v.line, v.rule))
        .collect()
}

// ---------------------------------------------------------------------
// Item tree.
// ---------------------------------------------------------------------

#[test]
fn item_tree_parses_nesting_raw_idents_and_cfg_test() {
    let src = "pub mod outer {\n\
               /// Docs.\n\
               pub struct r#Type;\n\
               #[cfg(test)]\n\
               pub fn gated() {}\n\
               impl r#Type {\n\
               pub fn method(&self) {}\n\
               }\n\
               }\n";
    let lines = scan(src);
    let toks = tokenize(&lines);
    let items = parse_items(&toks);
    assert_eq!(items.len(), 1);
    let outer = &items[0];
    assert_eq!(
        (outer.kind, outer.name.as_str()),
        (ItemKind::Module, "outer")
    );
    assert_eq!(outer.vis, Visibility::Public);
    assert_eq!((outer.line, outer.end_line), (1, 9));

    let kinds: Vec<(ItemKind, &str, bool)> = outer
        .children
        .iter()
        .map(|it| (it.kind, it.name.as_str(), it.cfg_test))
        .collect();
    assert_eq!(
        kinds,
        vec![
            (ItemKind::Struct, "Type", false), // r#Type folded to Type
            (ItemKind::Fn, "gated", true),     // #[cfg(test)] marks the fn
            (ItemKind::Impl, "Type", false),
        ]
    );
    let imp = &outer.children[2];
    assert_eq!(imp.children.len(), 1);
    assert_eq!(imp.children[0].name, "method");
}

// ---------------------------------------------------------------------
// Symbol table (rule L7's engine).
// ---------------------------------------------------------------------

fn feed(table: &mut SymbolTable, path: &str, src: &str) {
    let ctx = FileCtx::classify(path);
    let lines = scan(src);
    let toks = tokenize(&lines);
    let items = parse_items(&toks);
    table.add_file(path, ctx.kind, &items, &toks);
}

#[test]
fn symbol_table_flags_only_workspace_unreferenced_pub_items() {
    let mut table = SymbolTable::new();
    feed(
        &mut table,
        "crates/alpha/src/api.rs",
        "/// Used by beta.\n\
         pub fn used_helper() -> u8 { 0 }\n\
         \n\
         /// Referenced nowhere.\n\
         pub fn dead_helper() -> u8 { 1 }\n\
         \n\
         pub(crate) fn internal() {}\n\
         \n\
         #[cfg(test)]\n\
         mod tests {\n\
         pub fn test_only() {}\n\
         }\n",
    );
    // Crate roots re-export; their items are exempt from collection.
    feed(&mut table, "crates/alpha/src/lib.rs", "pub mod api;\n");
    // A test file referencing a symbol keeps it live.
    feed(
        &mut table,
        "crates/beta/src/lib.rs",
        "pub fn run() -> u8 { alpha::api::used_helper() }\n",
    );

    assert_eq!(
        table.def_count(),
        2,
        "only api.rs's two plain-pub fns define API"
    );
    let dead: Vec<&PubDef> = table.unreferenced();
    assert_eq!(dead.len(), 1, "used_helper is named in beta: {dead:?}");
    assert_eq!(dead[0].path, "crates/alpha/src/api.rs");
    assert_eq!(dead[0].name, "dead_helper");
    assert_eq!(dead[0].line, 5);
    assert_eq!(dead[0].kind, ItemKind::Fn);
}

// ---------------------------------------------------------------------
// L6 — hash-collection iteration in deterministic crates.
// ---------------------------------------------------------------------

#[test]
fn l6_flags_hash_iteration_methods() {
    let src = "use std::collections::HashMap;\n\
               fn f(index: &HashMap<u64, usize>) -> Vec<u64> {\n\
               index.keys().copied().collect()\n\
               }\n";
    assert_eq!(fired("crates/sim/src/demo.rs", src), vec![(3, Rule::L6)]);
    assert_eq!(fired("crates/core/src/demo.rs", src), vec![(3, Rule::L6)]);
}

#[test]
fn l6_flags_for_loops_over_constructor_bindings() {
    let src = "fn f() -> u64 {\n\
               let mut seen = std::collections::HashSet::new();\n\
               seen.insert(3u64);\n\
               let mut total = 0u64;\n\
               for k in &seen { total ^= *k; }\n\
               total\n\
               }\n";
    assert_eq!(fired("crates/chord/src/demo.rs", src), vec![(5, Rule::L6)]);
}

#[test]
fn l6_exempts_order_restoring_and_order_insensitive_sinks() {
    // Collect-then-sort restores a canonical order.
    let sorted = "use std::collections::HashMap;\n\
                  fn g(index: &HashMap<u64, usize>) -> Vec<u64> {\n\
                  let mut ks: Vec<u64> = index.keys().copied().collect();\n\
                  ks.sort_unstable();\n\
                  ks\n\
                  }\n";
    assert!(fired("crates/sim/src/demo.rs", sorted).is_empty());
    // Counting is order-insensitive.
    let counted = "use std::collections::HashMap;\n\
                   fn g(index: &HashMap<u64, usize>) -> usize { index.values().count() }\n";
    assert!(fired("crates/sim/src/demo.rs", counted).is_empty());
    // BTree collections are the sanctioned fix.
    let btree = "use std::collections::BTreeMap;\n\
                 fn g(index: &BTreeMap<u64, usize>) -> Vec<u64> {\n\
                 index.keys().copied().collect()\n\
                 }\n";
    assert!(fired("crates/sim/src/demo.rs", btree).is_empty());
}

#[test]
fn l6_scope_is_deterministic_crate_library_code() {
    let src = "use std::collections::HashMap;\n\
               fn f(index: &HashMap<u64, usize>) -> Vec<u64> {\n\
               index.keys().copied().collect()\n\
               }\n";
    // The workload/bench/freq crates replay nothing bit-for-bit.
    assert!(fired("crates/workload/src/demo.rs", src).is_empty());
    assert!(fired("crates/bench/src/demo.rs", src).is_empty());
    // Tests may iterate hashes (their assertions are order-free or local).
    assert!(fired("crates/sim/tests/demo.rs", src).is_empty());
    // A test-gated HashSet binding must not taint library code.
    let gated = "fn lib_side(seen: &std::collections::BTreeSet<u64>) -> usize {\n\
                 seen.iter().count()\n\
                 }\n\
                 #[cfg(test)]\n\
                 mod tests {\n\
                 fn t() {\n\
                 let seen: std::collections::HashSet<u64> = Default::default();\n\
                 for k in &seen { let _ = k; }\n\
                 }\n\
                 }\n";
    assert!(fired("crates/sim/src/demo.rs", gated).is_empty());
}

// ---------------------------------------------------------------------
// L8 — f64 cost comparisons in core/sim library code.
// ---------------------------------------------------------------------

#[test]
fn l8_flags_direct_cost_comparisons() {
    let eq = "fn same(cost_a: f64, cost_b: f64) -> bool {\n\
              cost_a == cost_b\n\
              }\n";
    assert_eq!(fired("crates/core/src/demo.rs", eq), vec![(2, Rule::L8)]);
    assert_eq!(fired("crates/sim/src/demo.rs", eq), vec![(2, Rule::L8)]);

    let lt = "fn better(gain: f64, best_gain: f64) -> bool { gain < best_gain }\n";
    assert_eq!(fired("crates/core/src/demo.rs", lt), vec![(1, Rule::L8)]);

    // Equality on any declared-f64 name fires even without cost flavor.
    let plain = "fn f(alpha: f64, beta: f64) -> bool { alpha == beta }\n";
    assert_eq!(fired("crates/core/src/demo.rs", plain), vec![(1, Rule::L8)]);

    let partial = "fn ord(a: f64, b: f64) -> bool { a.partial_cmp(&b).is_some() }\n";
    assert_eq!(
        fired("crates/core/src/demo.rs", partial),
        vec![(1, Rule::L8)]
    );
}

#[test]
fn l8_exempts_epsilon_idioms_total_cmp_and_zero_guards() {
    // An EPS constant in the statement marks the epsilon-window idiom.
    let eps = "const COST_EPS: f64 = 1e-9;\n\
               fn same(cost_a: f64, cost_b: f64) -> bool {\n\
               (cost_a - cost_b).abs() < COST_EPS\n\
               }\n";
    assert!(fired("crates/core/src/demo.rs", eps).is_empty());
    // total_cmp in the statement sanctions the comparison.
    let total = "fn better(gain: f64, best: f64) -> bool { gain.total_cmp(&best).is_gt() }\n";
    assert!(fired("crates/core/src/demo.rs", total).is_empty());
    // Sign checks against literal zero are well-defined on floats.
    let zero = "fn positive(gain: f64) -> bool { gain > 0.0 }\n";
    assert!(fired("crates/core/src/demo.rs", zero).is_empty());
    // Ordering on unflavored f64 names is allowed (tie-break policy is
    // only enforced where eq. 1 costs are recognizable).
    let plain = "fn f(alpha: f64, beta: f64) -> bool { alpha < beta }\n";
    assert!(fired("crates/core/src/demo.rs", plain).is_empty());
}

#[test]
fn l8_ignores_generics_tests_and_other_crates() {
    // `fn name<…>` generic brackets are not comparisons.
    let generic = "fn total_cost<F>(weight: f64, apply: F) -> f64\n\
                   where F: Fn(f64) -> f64 {\n\
                   apply(weight)\n\
                   }\n";
    assert!(fired("crates/core/src/demo.rs", generic).is_empty());
    // Out of scope: other crates, tests, test-gated modules.
    let eq = "fn same(cost_a: f64, cost_b: f64) -> bool { cost_a == cost_b }\n";
    assert!(fired("crates/chord/src/demo.rs", eq).is_empty());
    assert!(fired("crates/core/tests/demo.rs", eq).is_empty());
    let gated = "#[cfg(test)]\n\
                 mod tests {\n\
                 fn same(cost_a: f64, cost_b: f64) -> bool { cost_a == cost_b }\n\
                 }\n";
    assert!(fired("crates/core/src/demo.rs", gated).is_empty());
}

// ---------------------------------------------------------------------
// End-to-end: lint_root with L6/L7 findings and budgets.
// ---------------------------------------------------------------------

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A throw-away workspace directory for `lint_root` integration tests.
struct TempWorkspace {
    root: std::path::PathBuf,
}

impl TempWorkspace {
    fn new() -> TempWorkspace {
        let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let root = std::env::temp_dir().join(format!(
            "peercache-lint-semantic-{}-{seq}",
            std::process::id()
        ));
        std::fs::create_dir_all(&root).expect("create temp workspace");
        TempWorkspace { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("create parent dirs");
        }
        std::fs::write(path, content).expect("write fixture file");
    }
}

impl Drop for TempWorkspace {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn lint_root_reports_and_budgets_l7_dead_api() {
    let ws = TempWorkspace::new();
    ws.write("Cargo.toml", "[workspace]\n");
    ws.write("crates/alpha/src/lib.rs", "//! Alpha.\npub mod api;\n");
    ws.write(
        "crates/alpha/src/api.rs",
        "/// Dead.\n\
         pub fn dead_helper() -> u8 { 1 }\n\
         /// Live.\n\
         pub fn live_helper() -> u8 { 0 }\n",
    );
    ws.write(
        "crates/beta/src/lib.rs",
        "//! Beta.\npub fn run() -> u8 { alpha::api::live_helper() }\n",
    );

    let report = lint_root(&ws.root).expect("lintable tree");
    assert!(!report.ok(), "unbudgeted dead API must fail");
    assert_eq!(report.violations, 1, "{:?}", report.diagnostics);
    assert!(
        report.diagnostics[0].contains("L7") && report.diagnostics[0].contains("dead_helper"),
        "diagnostic names the dead item: {}",
        report.diagnostics[0]
    );

    ws.write("lint.allow", "L7 crates/alpha/src/api.rs 1\n");
    let report = lint_root(&ws.root).expect("lintable tree");
    assert!(report.ok(), "budgeted dead API passes: {report:?}");
    let findings: Vec<&Finding> = report.findings.iter().collect();
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, Rule::L7);
    assert!(
        !findings[0].over_budget,
        "allowlisted finding is not an error"
    );
}

#[test]
fn lint_root_notes_overgenerous_l6_budgets() {
    let ws = TempWorkspace::new();
    ws.write("Cargo.toml", "[workspace]\n");
    ws.write(
        "crates/sim/src/demo.rs",
        "use std::collections::HashMap;\n\
         fn f(index: &HashMap<u64, usize>) -> Vec<u64> {\n\
         index.keys().copied().collect()\n\
         }\n",
    );
    let report = lint_root(&ws.root).expect("lintable tree");
    assert!(!report.ok());
    assert!(
        report.diagnostics[0].contains("L6"),
        "{:?}",
        report.diagnostics
    );

    // A budget above the finding count passes but draws a tightening
    // note — the mechanism that ratchets budgets down over time.
    ws.write("lint.allow", "L6 crates/sim/src/demo.rs 2\n");
    let report = lint_root(&ws.root).expect("lintable tree");
    assert!(report.ok());
    assert_eq!(report.notes.len(), 1, "{:?}", report.notes);
    assert!(report.notes[0].contains("tighten"), "{}", report.notes[0]);
}

// ---------------------------------------------------------------------
// SARIF emitter, parsed back with the bench crate's JSON reader.
// ---------------------------------------------------------------------

#[test]
fn sarif_document_carries_rule_metadata_and_locations() {
    let findings = vec![
        Finding {
            path: "crates/sim/src/demo.rs".to_owned(),
            line: 3,
            rule: Rule::L6,
            message: "iteration \"order\" is\nrandomized".to_owned(),
            over_budget: true,
            flow: vec![],
        },
        Finding {
            path: "crates/core/src/cost.rs".to_owned(),
            line: 7,
            rule: Rule::L8,
            message: "direct cost comparison".to_owned(),
            over_budget: false,
            flow: vec![],
        },
    ];
    let doc = to_sarif(&findings);
    let json = Json::parse(&doc).expect("emitter produces valid JSON");

    assert_eq!(
        json.get("version").and_then(Json::as_str),
        Some(SARIF_VERSION)
    );
    let runs = json
        .get("runs")
        .and_then(Json::as_array)
        .expect("runs array");
    assert_eq!(runs.len(), 1);

    let driver = runs[0]
        .get("tool")
        .and_then(|t| t.get("driver"))
        .expect("tool.driver");
    assert_eq!(
        driver.get("name").and_then(Json::as_str),
        Some("peercache-lint")
    );
    let rules = driver
        .get("rules")
        .and_then(Json::as_array)
        .expect("driver.rules");
    assert_eq!(rules.len(), 14, "all fourteen rules are described");
    let ids: Vec<&str> = rules
        .iter()
        .filter_map(|r| r.get("id").and_then(Json::as_str))
        .collect();
    assert_eq!(
        ids,
        ["L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8", "L9", "L10", "L11", "L12", "L13", "L14"]
    );
    for rule in rules {
        let short = rule
            .get("shortDescription")
            .and_then(|d| d.get("text"))
            .and_then(Json::as_str)
            .expect("shortDescription.text");
        let full = rule
            .get("fullDescription")
            .and_then(|d| d.get("text"))
            .and_then(Json::as_str)
            .expect("fullDescription.text");
        assert!(!short.is_empty() && full.len() > short.len());
    }

    let results = runs[0]
        .get("results")
        .and_then(Json::as_array)
        .expect("results");
    assert_eq!(results.len(), 2);

    let first = &results[0];
    assert_eq!(first.get("ruleId").and_then(Json::as_str), Some("L6"));
    assert_eq!(first.get("ruleIndex").and_then(Json::as_f64), Some(5.0));
    assert_eq!(first.get("level").and_then(Json::as_str), Some("error"));
    assert_eq!(
        first
            .get("message")
            .and_then(|m| m.get("text"))
            .and_then(Json::as_str),
        Some("iteration \"order\" is\nrandomized"),
        "quotes and newlines round-trip through the escaper"
    );
    let location = first
        .get("locations")
        .and_then(Json::as_array)
        .and_then(<[Json]>::first)
        .and_then(|l| l.get("physicalLocation"))
        .expect("locations[0].physicalLocation");
    assert_eq!(
        location
            .get("artifactLocation")
            .and_then(|a| a.get("uri"))
            .and_then(Json::as_str),
        Some("crates/sim/src/demo.rs")
    );
    assert_eq!(
        location
            .get("region")
            .and_then(|r| r.get("startLine"))
            .and_then(Json::as_f64),
        Some(3.0)
    );

    let second = &results[1];
    assert_eq!(second.get("ruleId").and_then(Json::as_str), Some("L8"));
    assert_eq!(second.get("ruleIndex").and_then(Json::as_f64), Some(7.0));
    assert_eq!(
        second.get("level").and_then(Json::as_str),
        Some("note"),
        "allowlisted findings surface as notes, not errors"
    );
}

// ---------------------------------------------------------------------
// Self-lint: the analyzer and the thread pool hold a zero budget.
// ---------------------------------------------------------------------

#[test]
fn workspace_self_lint_keeps_lint_and_par_at_zero_budget() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_root(&root).expect("workspace root lints");
    assert!(
        report.ok(),
        "workspace lint must pass: {:#?}",
        report.diagnostics
    );
    for finding in &report.findings {
        assert!(
            !finding.path.starts_with("crates/lint/") && !finding.path.starts_with("crates/par/"),
            "crates/lint and crates/par carry no allowlist budget, found {} {} at {}:{}",
            finding.rule.name(),
            finding.message,
            finding.path,
            finding.line
        );
    }
}
