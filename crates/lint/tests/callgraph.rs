//! Tests for the interprocedural pass: call-graph construction and its
//! resolution heuristics (trait-method dispatch ambiguity, raw-ident
//! calls, local-shadowing, `cfg(test)` exclusion, cycles), the
//! reachability rules L9–L11 with their `lint.roots` binding, and the
//! SARIF `codeFlows` chain emitted for a reachability finding — parsed
//! back with `peercache-bench`'s JSON reader.

use std::sync::atomic::{AtomicUsize, Ordering};

use peercache_bench::json::Json;
use peercache_lint::callgraph::CallGraph;
use peercache_lint::items::{parse_items, tokenize, Item, Tok};
use peercache_lint::reach::{check_reachability, parse_roots};
use peercache_lint::scan::scan;
use peercache_lint::{lint_root, to_sarif, Rule};

/// Build one call-graph input triple from fixture source.
fn file(path: &str, src: &str) -> (String, Vec<Item>, Vec<Tok>) {
    let lines = scan(src);
    let toks = tokenize(&lines);
    let items = parse_items(&toks);
    (path.to_owned(), items, toks)
}

/// The resolved target names of `fn_name`'s call site labelled `label`.
fn targets_of(graph: &CallGraph, path: &str, fn_name: &str, label: &str) -> Vec<String> {
    let idx = *graph
        .named_in_file(path, fn_name)
        .first()
        .expect("fixture fn exists");
    graph
        .calls(idx)
        .iter()
        .find(|s| s.label == label)
        .expect("fixture call site exists")
        .targets
        .iter()
        .map(|&t| {
            format!(
                "{}@{}",
                graph.fns()[t].qualified_name(),
                graph.fns()[t].path
            )
        })
        .collect()
}

// ---------------------------------------------------------------------
// Resolution heuristics.
// ---------------------------------------------------------------------

#[test]
fn method_dispatch_narrows_by_self_types_named_in_caller_file() {
    let alpha = file(
        "crates/a/src/lib.rs",
        "pub struct Alpha;\n\
         impl Alpha {\n\
         pub fn ping(&self) -> u8 { 1 }\n\
         }\n",
    );
    let beta = file(
        "crates/b/src/lib.rs",
        "pub struct Beta;\n\
         impl Beta {\n\
         pub fn ping(&self) -> u8 { 2 }\n\
         }\n",
    );
    // Names only Alpha → .ping resolves to Alpha::ping alone.
    let narrow = file(
        "crates/c/src/lib.rs",
        "pub fn go(x: &a::Alpha) -> u8 { x.ping() }\n",
    );
    // Names both → genuinely ambiguous, both stay targets.
    let wide = file(
        "crates/d/src/lib.rs",
        "pub fn go2(x: &a::Alpha, y: &b::Beta) -> u8 { x.ping() + y.ping() }\n",
    );
    // Names neither → opaque, NOT a fan-out to every `ping` in the
    // workspace (the documented false-negative class).
    let blind = file(
        "crates/e/src/lib.rs",
        "pub fn go3(x: u8) -> u8 { x.ping() }\n",
    );

    let graph = CallGraph::build(&[alpha, beta, narrow, wide, blind]);
    assert_eq!(
        targets_of(&graph, "crates/c/src/lib.rs", "go", ".ping"),
        ["Alpha::ping@crates/a/src/lib.rs"]
    );
    assert_eq!(
        targets_of(&graph, "crates/d/src/lib.rs", "go2", ".ping"),
        [
            "Alpha::ping@crates/a/src/lib.rs",
            "Beta::ping@crates/b/src/lib.rs"
        ]
    );
    assert_eq!(
        targets_of(&graph, "crates/e/src/lib.rs", "go3", ".ping"),
        [""; 0]
    );
}

#[test]
fn raw_ident_calls_resolve_to_their_folded_definition() {
    let f = file(
        "crates/raw/src/lib.rs",
        "pub fn r#type() -> u8 { 3 }\n\
         pub fn call_raw() -> u8 { r#type() }\n",
    );
    let graph = CallGraph::build(&[f]);
    // `r#type` tokenizes folded, so both the definition and the call
    // site see the bare name.
    assert_eq!(
        targets_of(&graph, "crates/raw/src/lib.rs", "call_raw", "type"),
        ["type@crates/raw/src/lib.rs"]
    );
}

#[test]
fn shadowed_local_fn_wins_over_same_named_pub_symbol() {
    let local = file(
        "crates/l/src/lib.rs",
        "fn helper() -> u8 { 1 }\n\
         pub fn entry() -> u8 { helper() }\n",
    );
    let remote = file("crates/m/src/lib.rs", "pub fn helper() -> u8 { 2 }\n");
    let graph = CallGraph::build(&[local, remote]);
    assert_eq!(
        targets_of(&graph, "crates/l/src/lib.rs", "entry", "helper"),
        ["helper@crates/l/src/lib.rs"]
    );
    // With no local definition, the workspace-wide free fn is the target.
    let caller = file(
        "crates/n/src/lib.rs",
        "pub fn use_it() -> u8 { helper() }\n",
    );
    let remote2 = file("crates/m/src/lib.rs", "pub fn helper() -> u8 { 2 }\n");
    let graph = CallGraph::build(&[caller, remote2]);
    assert_eq!(
        targets_of(&graph, "crates/n/src/lib.rs", "use_it", "helper"),
        ["helper@crates/m/src/lib.rs"]
    );
}

#[test]
fn cfg_test_callees_are_invisible_to_the_graph() {
    let f = file(
        "crates/t/src/lib.rs",
        "pub fn entry() { gated() }\n\
         #[cfg(test)]\n\
         fn gated() { panic!(\"test only\") }\n",
    );
    let graph = CallGraph::build(&[f]);
    assert!(
        graph
            .named_in_file("crates/t/src/lib.rs", "gated")
            .is_empty(),
        "cfg(test) fns must not enter the graph"
    );
    // The call site stays, opaque.
    assert_eq!(
        targets_of(&graph, "crates/t/src/lib.rs", "entry", "gated"),
        [""; 0]
    );
}

#[test]
fn recursive_fn_forms_a_cycle_and_reachability_terminates() {
    let f = file(
        "crates/r/src/lib.rs",
        "pub fn rec(n: u8) -> u8 {\n\
         if n == 0 { stop() } else { rec(n - 1) }\n\
         }\n\
         fn stop() -> u8 { Some(0u8).unwrap() }\n",
    );
    let graph = CallGraph::build(&[f]);
    assert_eq!(
        targets_of(&graph, "crates/r/src/lib.rs", "rec", "rec"),
        ["rec@crates/r/src/lib.rs"],
        "the self-edge is recorded"
    );
    let roots = parse_roots("L10 crates/r/src/lib.rs rec\n").expect("roots parse");
    let found = check_reachability(&graph, &roots).expect("roots resolve");
    assert_eq!(found.len(), 1, "{found:?}");
    let (path, v) = &found[0];
    assert_eq!((path.as_str(), v.rule), ("crates/r/src/lib.rs", Rule::L10));
    assert!(v.message.contains("`.unwrap`"), "{}", v.message);
    // root decl → rec calls stop → construct.
    assert_eq!(v.flow.len(), 3, "{:?}", v.flow);
}

#[test]
fn index_expressions_fire_l10_but_full_range_slices_do_not() {
    let f = file(
        "crates/ix/src/lib.rs",
        "pub fn walk(xs: &[u8], i: usize) -> u8 {\n\
         let whole = &xs[..];\n\
         whole[i]\n\
         }\n",
    );
    let graph = CallGraph::build(&[f]);
    let roots = parse_roots("L10 crates/ix/src/lib.rs walk\n").expect("roots parse");
    let found = check_reachability(&graph, &roots).expect("roots resolve");
    let lines: Vec<usize> = found.iter().map(|(_, v)| v.line).collect();
    assert_eq!(lines, [3], "only the real index, not `[..]`: {found:?}");
}

// ---------------------------------------------------------------------
// lint.roots parsing and binding.
// ---------------------------------------------------------------------

#[test]
fn roots_parsing_rejects_malformed_and_non_reachability_lines() {
    assert!(parse_roots("# comment\n\nL9 a/b.rs solve_into\n").is_ok());
    // The pass-4 reuse-cycle rules are rooted too; L12 is always-on and
    // takes no roots.
    assert!(parse_roots("L13 a/b.rs solve_into\nL14 a/b.rs solve_into\n").is_ok());
    for bad in [
        "L9 a/b.rs",
        "L9 a/b.rs solve extra",
        "L12 a/b.rs f",
        "L1 a/b.rs f",
    ] {
        assert!(parse_roots(bad).is_err(), "accepted: {bad}");
    }
}

#[test]
fn unresolvable_root_is_a_hard_error() {
    let f = file("crates/x/src/lib.rs", "pub fn present() {}\n");
    let graph = CallGraph::build(&[f]);
    let roots = parse_roots("L10 crates/x/src/lib.rs renamed_away\n").expect("roots parse");
    let err = check_reachability(&graph, &roots).expect_err("missing root must fail");
    assert!(err.contains("renamed_away"), "{err}");
}

// ---------------------------------------------------------------------
// End to end: lint_root + SARIF codeFlows, parsed back via bench Json.
// ---------------------------------------------------------------------

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

struct TempWorkspace {
    root: std::path::PathBuf,
}

impl TempWorkspace {
    fn new() -> TempWorkspace {
        let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let root = std::env::temp_dir().join(format!(
            "peercache-lint-callgraph-{}-{seq}",
            std::process::id()
        ));
        std::fs::create_dir_all(&root).expect("create temp workspace");
        TempWorkspace { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("create parent dirs");
        }
        std::fs::write(path, content).expect("write fixture file");
    }
}

impl Drop for TempWorkspace {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn l10_finding_carries_a_full_code_flow_chain_into_sarif() {
    let ws = TempWorkspace::new();
    ws.write("Cargo.toml", "[workspace]\n");
    ws.write(
        "crates/walk/src/lib.rs",
        "//! Fault-walk fixture.\n\
         pub fn walk() -> u8 { helper() }\n\
         fn helper() -> u8 { victim() }\n\
         fn victim() -> u8 { Some(1u8).unwrap() }\n",
    );
    ws.write("lint.roots", "L10 crates/walk/src/lib.rs walk\n");
    // Budget the L1 the unwrap also fires, so only L10 shapes the test.
    ws.write("lint.allow", "L1 crates/walk/src/lib.rs 1\n");

    let report = lint_root(&ws.root).expect("lintable tree");
    assert!(!report.ok(), "unbudgeted L10 must fail");
    let finding = report
        .findings
        .iter()
        .find(|f| f.rule == Rule::L10)
        .expect("L10 finding present");
    assert!(finding.over_budget);
    assert_eq!(finding.path, "crates/walk/src/lib.rs");
    assert_eq!(finding.line, 4);
    assert_eq!(finding.flow.len(), 4, "{:?}", finding.flow);

    let doc = to_sarif(&report.findings);
    let json = Json::parse(&doc).expect("emitter produces valid JSON");
    let results = json
        .get("runs")
        .and_then(|r| r.as_array())
        .and_then(|r| r.first())
        .and_then(|r| r.get("results"))
        .and_then(Json::as_array)
        .expect("results array");
    let l10 = results
        .iter()
        .find(|r| r.get("ruleId").and_then(Json::as_str) == Some("L10"))
        .expect("L10 result in SARIF");

    let locations = l10
        .get("codeFlows")
        .and_then(Json::as_array)
        .and_then(|f| f.first())
        .and_then(|f| f.get("threadFlows"))
        .and_then(Json::as_array)
        .and_then(|t| t.first())
        .and_then(|t| t.get("locations"))
        .and_then(Json::as_array)
        .expect("codeFlows[0].threadFlows[0].locations");
    assert_eq!(locations.len(), 4);

    let step = |i: usize, key: &str| -> Json {
        locations[i]
            .get("location")
            .and_then(|l| {
                if key == "message" {
                    l.get("message").and_then(|m| m.get("text")).cloned()
                } else {
                    l.get("physicalLocation")
                        .and_then(|p| p.get("region"))
                        .and_then(|r| r.get("startLine"))
                        .cloned()
                }
            })
            .expect("step field")
    };
    let start_lines: Vec<f64> = (0..4)
        .map(|i| step(i, "line").as_f64().expect("startLine"))
        .collect();
    assert_eq!(start_lines, [2.0, 2.0, 3.0, 4.0]);
    let first = step(0, "message");
    let last = step(3, "message");
    assert!(
        first.as_str().expect("msg").contains("walk"),
        "chain starts at the root: {first:?}"
    );
    assert!(
        last.as_str().expect("msg").contains(".unwrap"),
        "chain ends at the construct: {last:?}"
    );

    // An L1-only finding carries no codeFlows.
    let l1 = results
        .iter()
        .find(|r| r.get("ruleId").and_then(Json::as_str) == Some("L1"))
        .expect("L1 result in SARIF");
    assert!(l1.get("codeFlows").is_none());
}

#[test]
fn l9_and_l11_root_sets_enforce_their_construct_lists() {
    let ws = TempWorkspace::new();
    ws.write("Cargo.toml", "[workspace]\n");
    ws.write(
        "crates/kern/src/lib.rs",
        "//! Kernel fixture.\n\
         pub fn solve_into(n: usize) -> usize { scratch(n) }\n\
         fn scratch(n: usize) -> usize { let v: Vec<u8> = Vec::with_capacity(n); v.capacity() }\n",
    );
    ws.write(
        "crates/sim/src/lib.rs",
        "//! Entry fixture.\n\
         pub fn run() -> u8 { peercache_par::helper() }\n",
    );
    ws.write(
        "crates/par/src/lib.rs",
        "//! Sanctioned ambient boundary.\n\
         pub fn helper() -> u8 {\n\
         std::env::var(\"PEERCACHE_THREADS\").map(|_| 1).unwrap_or(0)\n\
         }\n",
    );
    ws.write(
        "lint.roots",
        "L9 crates/kern/src/lib.rs solve_into\n\
         L11 crates/sim/src/lib.rs run\n",
    );

    let report = lint_root(&ws.root).expect("lintable tree");
    let rules: Vec<(Rule, &str, usize)> = report
        .findings
        .iter()
        .map(|f| (f.rule, f.path.as_str(), f.line))
        .collect();
    assert!(
        rules.contains(&(Rule::L9, "crates/kern/src/lib.rs", 3)),
        "Vec::with_capacity reachable from solve_into fires L9: {rules:?}"
    );
    assert!(
        !rules.iter().any(|(r, _, _)| *r == Rule::L11),
        "env reads inside crates/par are the sanctioned boundary: {rules:?}"
    );
}
