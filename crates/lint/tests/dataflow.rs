//! Full-stack tests for pass 4 (`crates/lint/src/dataflow.rs`): seeded
//! mutations that the dataflow rules must catch (a draw reordered into
//! one match arm → L12, a skipped scratch `clear()` → L13, ungated
//! growth → L14), the clean-kernel negatives, the stale-`lint.allow`
//! hard errors, the unresolvable-root hard error, and the SARIF
//! `codeFlows` round-trip through `peercache-bench`'s JSON reader.
//!
//! Every test drives `lint_root` over a real on-disk workspace, so the
//! assertions pin the whole pipeline — scan → tokenize → item tree →
//! call graph → CFG → fixpoint → budgeting — not a single layer.

use std::sync::atomic::{AtomicUsize, Ordering};

use peercache_bench::json::Json;
use peercache_lint::{lint_root, to_sarif, Rule};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

struct TempWorkspace {
    root: std::path::PathBuf,
}

impl TempWorkspace {
    fn new() -> TempWorkspace {
        let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let root = std::env::temp_dir().join(format!(
            "peercache-lint-dataflow-{}-{seq}",
            std::process::id()
        ));
        std::fs::create_dir_all(&root).expect("create temp workspace");
        TempWorkspace { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("create parent dirs");
        }
        std::fs::write(path, content).expect("write fixture file");
    }
}

impl Drop for TempWorkspace {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

/// A `build_stable`-like constructor where a refactor moved a second
/// draw into one match arm — the exact silent-stream-skew mutation the
/// acceptance criteria seed.
const REORDERED_DRAWS: &str = "//! Stable-build fixture: one arm draws twice, the other once.\n\
     use rand::Rng;\n\
     fn build_stable<R: Rng + ?Sized>(mode: u8, rng: &mut R) -> u64 {\n\
         match mode {\n\
             0 => rng.gen::<u64>() + rng.gen::<u64>(),\n\
             _ => rng.gen(),\n\
         }\n\
     }\n";

/// A workspace kernel whose `acc` clear was skipped: the first touch is
/// a read of whatever the previous solve left behind.
const SKIPPED_CLEAR: &str = "//! Workspace-kernel fixture: the `acc` clear was skipped.\n\
     struct Workspace {\n\
         acc: Vec<u64>,\n\
     }\n\
     fn solve_into(ws: &mut Workspace, xs: &[u64]) -> u64 {\n\
         let mut total = 0u64;\n\
         for v in &ws.acc {\n\
             total = total.wrapping_add(*v);\n\
         }\n\
         for x in xs {\n\
             ws.acc.push(*x);\n\
         }\n\
         total\n\
     }\n";

#[test]
fn seeded_mutation_reordering_draws_into_one_arm_is_caught_by_l12() {
    let ws = TempWorkspace::new();
    ws.write("Cargo.toml", "[workspace]\n");
    ws.write("crates/sim/src/build.rs", REORDERED_DRAWS);

    let report = lint_root(&ws.root).expect("lintable tree");
    assert!(!report.ok(), "unbudgeted L12 must fail the lint");
    let finding = report
        .findings
        .iter()
        .find(|f| f.rule == Rule::L12)
        .expect("L12 finding present");
    assert!(finding.over_budget);
    assert_eq!(finding.path, "crates/sim/src/build.rs");
    assert!(
        finding.message.contains("1 vs 2"),
        "arm draw counts surface in the message: {}",
        finding.message
    );
    assert!(
        finding.flow.len() >= 2,
        "L12 carries an intraprocedural flow: {:?}",
        finding.flow
    );
}

#[test]
fn seeded_mutation_skipping_a_clear_is_caught_by_l13() {
    let ws = TempWorkspace::new();
    ws.write("Cargo.toml", "[workspace]\n");
    ws.write("crates/core/src/kern.rs", SKIPPED_CLEAR);
    ws.write("lint.roots", "L13 crates/core/src/kern.rs solve_into\n");

    let report = lint_root(&ws.root).expect("lintable tree");
    assert!(!report.ok(), "skipped clear must fail the lint");
    let finding = report
        .findings
        .iter()
        .find(|f| f.rule == Rule::L13)
        .expect("L13 finding present");
    assert!(finding.over_budget);
    assert_eq!(finding.path, "crates/core/src/kern.rs");
    assert!(
        finding.message.contains("`acc` read before clear"),
        "{}",
        finding.message
    );
    assert!(
        finding.flow.len() >= 2,
        "L13 carries the reuse-cycle flow: {:?}",
        finding.flow
    );
}

#[test]
fn ungated_growth_is_caught_by_l14() {
    let ws = TempWorkspace::new();
    ws.write("Cargo.toml", "[workspace]\n");
    ws.write(
        "crates/core/src/kern.rs",
        "//! Workspace-kernel fixture: growth with no dominating clear.\n\
         struct Workspace {\n\
             acc: Vec<u64>,\n\
         }\n\
         fn solve_into(ws: &mut Workspace, xs: &[u64]) {\n\
             for x in xs {\n\
                 ws.acc.push(*x);\n\
             }\n\
         }\n",
    );
    ws.write("lint.roots", "L14 crates/core/src/kern.rs solve_into\n");

    let report = lint_root(&ws.root).expect("lintable tree");
    assert!(!report.ok(), "ungated growth must fail the lint");
    let finding = report
        .findings
        .iter()
        .find(|f| f.rule == Rule::L14)
        .expect("L14 finding present");
    assert!(
        finding.message.contains("grown without a dominating clear"),
        "{}",
        finding.message
    );
}

#[test]
fn clean_kernel_passes_all_hygiene_roots() {
    let ws = TempWorkspace::new();
    ws.write("Cargo.toml", "[workspace]\n");
    ws.write(
        "crates/core/src/kern.rs",
        "//! Workspace-kernel fixture: clear-first reuse discipline.\n\
         struct Workspace {\n\
             acc: Vec<u64>,\n\
         }\n\
         fn solve_into(ws: &mut Workspace, xs: &[u64]) -> u64 {\n\
             ws.acc.clear();\n\
             for x in xs {\n\
                 ws.acc.push(*x);\n\
             }\n\
             let mut total = 0u64;\n\
             for v in &ws.acc {\n\
                 total = total.wrapping_add(*v);\n\
             }\n\
             total\n\
         }\n",
    );
    ws.write(
        "lint.roots",
        "L13 crates/core/src/kern.rs solve_into\n\
         L14 crates/core/src/kern.rs solve_into\n",
    );

    let report = lint_root(&ws.root).expect("lintable tree");
    assert!(
        report.ok(),
        "clear-first kernel is hygienic: {:?}",
        report.diagnostics
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn unresolvable_hygiene_root_is_a_hard_error() {
    let ws = TempWorkspace::new();
    ws.write("Cargo.toml", "[workspace]\n");
    ws.write(
        "crates/core/src/kern.rs",
        "//! Kernel fixture.\n\
         fn present() {}\n",
    );
    ws.write("lint.roots", "L13 crates/core/src/kern.rs renamed_away\n");

    let err = lint_root(&ws.root).expect_err("missing root must fail");
    assert!(err.contains("renamed_away"), "{err}");
    assert!(err.contains("L13"), "{err}");
}

#[test]
fn stale_allow_entry_for_a_missing_path_is_a_hard_error() {
    let ws = TempWorkspace::new();
    ws.write("Cargo.toml", "[workspace]\n");
    ws.write(
        "crates/sim/src/clean.rs",
        "//! Clean fixture.\n\
         fn noop() {}\n",
    );
    ws.write("lint.allow", "L1 crates/sim/src/gone.rs 2\n");

    let report = lint_root(&ws.root).expect("lintable tree");
    assert!(!report.ok(), "stale path entry must fail the lint");
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.contains("stale entry") && d.contains("no longer exists")),
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn stale_allow_entry_with_no_remaining_violations_is_a_hard_error() {
    let ws = TempWorkspace::new();
    ws.write("Cargo.toml", "[workspace]\n");
    ws.write(
        "crates/sim/src/clean.rs",
        "//! Clean fixture.\n\
         fn noop() {}\n",
    );
    ws.write("lint.allow", "L1 crates/sim/src/clean.rs 1\n");

    let report = lint_root(&ws.root).expect("lintable tree");
    assert!(!report.ok(), "burned-down budget must fail the lint");
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.contains("stale entry") && d.contains("no violations remain")),
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn under_budget_entries_stay_notes_not_errors() {
    let ws = TempWorkspace::new();
    ws.write("Cargo.toml", "[workspace]\n");
    ws.write(
        "crates/sim/src/one.rs",
        "//! One-violation fixture.\n\
         fn one() -> u8 { Some(1u8).unwrap() }\n",
    );
    ws.write("lint.allow", "L1 crates/sim/src/one.rs 2\n");

    let report = lint_root(&ws.root).expect("lintable tree");
    assert!(
        report.ok(),
        "an over-generous but live budget stays green: {:?}",
        report.diagnostics
    );
    assert!(
        report.notes.iter().any(|n| n.contains("tighten")),
        "{:?}",
        report.notes
    );
}

#[test]
fn dataflow_code_flows_round_trip_through_sarif() {
    let ws = TempWorkspace::new();
    ws.write("Cargo.toml", "[workspace]\n");
    ws.write("crates/sim/src/build.rs", REORDERED_DRAWS);
    ws.write("crates/core/src/kern.rs", SKIPPED_CLEAR);
    ws.write("lint.roots", "L13 crates/core/src/kern.rs solve_into\n");

    let report = lint_root(&ws.root).expect("lintable tree");
    let doc = to_sarif(&report.findings);
    let json = Json::parse(&doc).expect("emitter produces valid JSON");
    let results = json
        .get("runs")
        .and_then(|r| r.as_array())
        .and_then(|r| r.first())
        .and_then(|r| r.get("results"))
        .and_then(Json::as_array)
        .expect("results array");

    let locations_of = |rule: &str| -> Vec<Json> {
        results
            .iter()
            .find(|r| r.get("ruleId").and_then(Json::as_str) == Some(rule))
            .expect("rule present in SARIF")
            .get("codeFlows")
            .and_then(Json::as_array)
            .and_then(|f| f.first())
            .and_then(|f| f.get("threadFlows"))
            .and_then(Json::as_array)
            .and_then(|t| t.first())
            .and_then(|t| t.get("locations"))
            .and_then(Json::as_array)
            .expect("codeFlows[0].threadFlows[0].locations")
            .to_vec()
    };
    let step_message = |loc: &Json| -> String {
        loc.get("location")
            .and_then(|l| l.get("message"))
            .and_then(|m| m.get("text"))
            .and_then(Json::as_str)
            .expect("step message")
            .to_owned()
    };

    let l12 = locations_of("L12");
    assert!(l12.len() >= 2, "L12 thread flow has >= 2 steps");
    assert!(
        step_message(&l12[0]).contains("build_stable"),
        "flow opens at the RNG-taking function: {:?}",
        step_message(&l12[0])
    );
    assert!(
        step_message(l12.last().expect("last step")).contains("merge"),
        "flow ends at the diverging merge: {:?}",
        step_message(l12.last().expect("last step"))
    );

    let l13 = locations_of("L13");
    assert!(l13.len() >= 2, "L13 thread flow has >= 2 steps");
    assert!(
        step_message(&l13[0]).contains("reuse cycle rooted at"),
        "{:?}",
        step_message(&l13[0])
    );
    assert!(
        l13.iter().any(|s| step_message(s).contains("read here")),
        "the dirty read appears in the chain: {:?}",
        l13.iter().map(&step_message).collect::<Vec<_>>()
    );
}
