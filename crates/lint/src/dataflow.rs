//! Pass 4, stage 2: forward dataflow over the [`crate::cfg`] graphs,
//! composed with the pass-3 call graph for bottom-up summaries.
//!
//! Two analyses share one fixed-point engine (initialize the entry,
//! join predecessor out-states at merge points — loop headers widen —
//! iterate a worklist to a fixed point, then run a separate reporting
//! pass over the reachable blocks so violations are emitted exactly
//! once):
//!
//! * **L12 draw balance** runs over every function in the deterministic
//!   crates that takes an RNG parameter. The lattice is
//!   [`Draws`]: `Known(n)` counts draw calls on acyclic paths, joins of
//!   differing `Known`s at a branch merge produce `Conflict` (the
//!   violation), and the same join at a loop header widens silently to
//!   `Unknown` — iteration-dependent totals are loop-trip-count facts,
//!   not branch divergence. Calls forwarding the RNG splice in the
//!   callee's memoized draw summary; call-graph cycles and unresolved
//!   targets degrade to `Unknown`, never a false count.
//! * **L13 clear-before-read / L14 growth-domination** run per
//!   `lint.roots` root. The state is the set of scratch fields already
//!   cleared this reuse cycle; the join is set intersection (cleared on
//!   *every* incoming path), reads of an uncleared field report L13,
//!   growth of an uncleared field reports L14, and method calls on the
//!   scratch receiver splice the callee's per-field [`FieldFate`]
//!   summary so deep kernels are checked through their wrappers.
//!
//! Findings carry the intraprocedural merge/use site and the call chain
//! into the deep operation as [`FlowStep`]s, which the SARIF emitter
//! turns into codeFlows. The deliberate false-negative classes (the
//! `u128` double-draw, `&mut field` borrows assumed initializing,
//! clears demoted inside closures) are documented in DESIGN.md
//! ("Dataflow pass: CFG, draw-balance, and buffer hygiene").

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::cfg::{build_cfg, fn_signature, Cfg, DrawEffect, FieldAccess, FnSig, Op};
use crate::items::{Item, Tok};
use crate::reach::RootSpec;
use crate::rules::{FlowStep, Rule, Violation, DETERMINISTIC_CRATES};

/// The L12 lattice: how many RNG draws have happened on every path to a
/// program point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Draws {
    /// The same statically known count on every path so far.
    Known(u32),
    /// Data-dependent (loops, `shuffle`, macros, opaque callees): the
    /// analysis stays silent from here on.
    Unknown,
    /// Two paths merged with different known counts — the violation.
    Conflict,
}

impl Draws {
    /// Lattice join at a merge point. `loop_head` widens a disagreement
    /// to `Unknown` instead of `Conflict`.
    fn join(self, other: Draws, loop_head: bool) -> Draws {
        match (self, other) {
            (Draws::Conflict, _) | (_, Draws::Conflict) => Draws::Conflict,
            (Draws::Unknown, _) | (_, Draws::Unknown) => Draws::Unknown,
            (Draws::Known(a), Draws::Known(b)) if a == b => Draws::Known(a),
            (Draws::Known(_), Draws::Known(_)) => {
                if loop_head {
                    Draws::Unknown
                } else {
                    Draws::Conflict
                }
            }
        }
    }
}

/// What one callee does to the draw stream, from the caller's view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DrawSummary {
    /// Consumes exactly this many draws on every path.
    Exact(u32),
    /// Data-dependent, divergent, cyclic, or unresolved.
    Unknown,
}

/// What one callee does to one scratch field, from the caller's view.
#[derive(Debug, Clone, Default)]
struct FieldFate {
    /// The flow chain (callee decl → … → deep op) of a read that
    /// happens before the callee's own clear, on some path.
    dirty_read: Option<Vec<FlowStep>>,
    /// Same, for growth before the callee's own clear.
    dirty_grow: Option<Vec<FlowStep>>,
    /// True when the callee leaves the field cleared on every path.
    clears: bool,
}

/// Everything pass 4 needs about one analyzed function, built lazily.
struct FnCfg {
    sig: FnSig,
    cfg: Cfg,
}

/// Shared analysis context: the call graph, per-file token streams, and
/// memoized per-function artifacts.
struct Ctx<'a> {
    graph: &'a CallGraph,
    toks_by_path: BTreeMap<&'a str, &'a [Tok]>,
    cfgs: BTreeMap<usize, Option<FnCfg>>,
    draw_summaries: BTreeMap<usize, DrawSummary>,
    draws_in_progress: BTreeSet<usize>,
    fate_summaries: BTreeMap<usize, BTreeMap<String, FieldFate>>,
    fates_in_progress: BTreeSet<usize>,
}

impl<'a> Ctx<'a> {
    /// Lazily build (and cache) the signature + CFG of function `idx`.
    fn fn_cfg(&mut self, idx: usize) -> Option<&FnCfg> {
        if !self.cfgs.contains_key(&idx) {
            let node = &self.graph.fns()[idx];
            let built = self
                .toks_by_path
                .get(node.path.as_str())
                .and_then(|toks| fn_signature(toks, node).map(|sig| (toks, sig)))
                .map(|(toks, sig)| {
                    let cfg = build_cfg(toks, &sig);
                    FnCfg { sig, cfg }
                });
            self.cfgs.insert(idx, built);
        }
        self.cfgs.get(&idx).and_then(|o| o.as_ref())
    }

    /// Resolve the pass-3 targets of the call-site at `line` with
    /// `label` inside function `idx`.
    fn resolve(&self, idx: usize, line: usize, label: &str) -> Vec<usize> {
        self.graph
            .calls(idx)
            .iter()
            .filter(|cs| cs.line == line && cs.label == label)
            .flat_map(|cs| cs.targets.iter().copied())
            .collect()
    }

    /// The draw summary of function `idx`: how many draws it consumes
    /// on its own RNG parameter. Memoized; call-graph cycles degrade to
    /// `Unknown`.
    fn draw_summary(&mut self, idx: usize) -> DrawSummary {
        if let Some(&s) = self.draw_summaries.get(&idx) {
            return s;
        }
        if !self.draws_in_progress.insert(idx) {
            return DrawSummary::Unknown; // cycle
        }
        let s = self.compute_draw_summary(idx);
        self.draws_in_progress.remove(&idx);
        self.draw_summaries.insert(idx, s);
        s
    }

    fn compute_draw_summary(&mut self, idx: usize) -> DrawSummary {
        let Some(fc) = self.fn_cfg(idx) else {
            return DrawSummary::Unknown;
        };
        if fc.sig.rng_params.is_empty() {
            // The callee does not bind an RNG parameter the analysis
            // recognizes; whatever it received is not drawn from here.
            return DrawSummary::Exact(0);
        }
        let (ins, exit) = {
            let exit = fc.cfg.exit;
            (self.draw_fixpoint(idx), exit)
        };
        match ins.get(exit).copied().flatten() {
            Some(Draws::Known(n)) => DrawSummary::Exact(n),
            // A conflict is reported inside the callee itself; callers
            // see it as data-dependent, not as a second finding.
            _ => DrawSummary::Unknown,
        }
    }

    /// Run the L12 forward fixpoint over function `idx`. Returns the
    /// per-block in-states (`None` = unreachable; empty when the
    /// function's CFG cannot be built).
    fn draw_fixpoint(&mut self, idx: usize) -> Vec<Option<Draws>> {
        // Snapshot the op lists so callee summaries can be resolved
        // (mutably) while iterating.
        let Some(fc) = self.fn_cfg(idx) else {
            return Vec::new();
        };
        let preds = fc.cfg.preds();
        let loop_heads: Vec<bool> = fc.cfg.blocks.iter().map(|b| b.loop_head).collect();
        let blocks: Vec<Vec<Op>> = fc.cfg.blocks.iter().map(|b| b.ops.clone()).collect();
        let entry = fc.cfg.entry;
        let n = blocks.len();
        let mut ins: Vec<Option<Draws>> = vec![None; n];
        ins[entry] = Some(Draws::Known(0));
        let mut work: Vec<usize> = (0..n).collect();
        while let Some(b) = work.pop() {
            let mut in_state = if b == entry {
                Some(Draws::Known(0))
            } else {
                None
            };
            for &p in &preds[b] {
                if let Some(pin) = ins[p] {
                    let pout = self.draw_transfer(idx, pin, &blocks[p]);
                    in_state = Some(match in_state {
                        None => pout,
                        Some(cur) => cur.join(pout, loop_heads[b]),
                    });
                }
            }
            if in_state != ins[b] && in_state.is_some() {
                ins[b] = in_state;
                // Requeue successors (via preds-inverse: all blocks that
                // list b as a pred).
                for (s, ps) in preds.iter().enumerate() {
                    if ps.contains(&b) && !work.contains(&s) {
                        work.push(s);
                    }
                }
            }
        }
        ins
    }

    /// L12 transfer function: fold a block's ops over an in-state.
    fn draw_transfer(&mut self, idx: usize, mut state: Draws, ops: &[Op]) -> Draws {
        for op in ops {
            let effect = match op {
                Op::Draw { count, .. } => match count {
                    DrawEffect::Exact(k) => DrawSummary::Exact(*k),
                    DrawEffect::Unknown => DrawSummary::Unknown,
                },
                Op::OpaqueDraw { .. } => DrawSummary::Unknown,
                Op::RngCall { line, label } => {
                    let targets = self.resolve(idx, *line, label);
                    if targets.is_empty() {
                        DrawSummary::Unknown
                    } else {
                        let mut agg: Option<DrawSummary> = None;
                        for t in targets {
                            let s = self.draw_summary(t);
                            agg = Some(match (agg, s) {
                                (None, s) => s,
                                (Some(DrawSummary::Exact(a)), DrawSummary::Exact(b)) if a == b => {
                                    DrawSummary::Exact(a)
                                }
                                _ => DrawSummary::Unknown,
                            });
                        }
                        agg.unwrap_or(DrawSummary::Unknown)
                    }
                }
                Op::ScratchCall { .. } | Op::Field { .. } => continue,
            };
            state = match (state, effect) {
                (Draws::Known(n), DrawSummary::Exact(k)) => Draws::Known(n + k),
                (Draws::Known(_), DrawSummary::Unknown) => Draws::Unknown,
                (s, _) => s, // Unknown and Conflict absorb
            };
        }
        state
    }

    /// The per-field fate summary of function `idx`, for splicing at
    /// `recv.method(…)` call sites. Memoized; cycles degrade to empty.
    fn fate_summary(&mut self, idx: usize) -> BTreeMap<String, FieldFate> {
        if let Some(s) = self.fate_summaries.get(&idx) {
            return s.clone();
        }
        if !self.fates_in_progress.insert(idx) {
            return BTreeMap::new(); // cycle
        }
        let s = self.compute_fate_summary(idx);
        self.fates_in_progress.remove(&idx);
        self.fate_summaries.insert(idx, s.clone());
        s
    }

    fn compute_fate_summary(&mut self, idx: usize) -> BTreeMap<String, FieldFate> {
        let Some(fc) = self.fn_cfg(idx) else {
            return BTreeMap::new();
        };
        if fc.sig.scratch_params.is_empty() {
            return BTreeMap::new();
        }
        let (node_path, node_line, qual) = {
            let node = &self.graph.fns()[idx];
            (node.path.clone(), node.line, node.qualified_name())
        };
        let (ins, blocks, exit) = self.fate_fixpoint(idx);
        let mut fates: BTreeMap<String, FieldFate> = BTreeMap::new();
        // Reporting sweep: find the first dirty read/grow per field.
        for (b, ops) in blocks.iter().enumerate() {
            let Some(in_set) = &ins[b] else { continue };
            let mut cleared = in_set.clone();
            for op in ops {
                self.fate_step(idx, op, &mut cleared, &mut |field, kind, chain| {
                    let fate = fates.entry(field.to_owned()).or_default();
                    let slot = match kind {
                        DirtyKind::Read => &mut fate.dirty_read,
                        DirtyKind::Grow => &mut fate.dirty_grow,
                    };
                    if slot.is_none() {
                        let mut full = vec![FlowStep {
                            path: node_path.clone(),
                            line: node_line,
                            message: format!("inside `{qual}`"),
                        }];
                        full.extend(chain);
                        *slot = Some(full);
                    }
                });
            }
        }
        // Fields left cleared on every path reaching the exit.
        if let Some(exit_set) = ins.get(exit).and_then(|o| o.as_ref()) {
            for field in exit_set {
                fates.entry(field.clone()).or_default().clears = true;
            }
        }
        fates
    }

    /// Run the L13/L14 forward fixpoint over function `idx`. Returns
    /// (per-block in-sets, per-block op snapshots, exit index).
    #[allow(clippy::type_complexity)]
    fn fate_fixpoint(
        &mut self,
        idx: usize,
    ) -> (Vec<Option<BTreeSet<String>>>, Vec<Vec<Op>>, usize) {
        let Some(fc) = self.fn_cfg(idx) else {
            return (Vec::new(), Vec::new(), 0);
        };
        let preds = fc.cfg.preds();
        let blocks: Vec<Vec<Op>> = fc.cfg.blocks.iter().map(|b| b.ops.clone()).collect();
        let entry = fc.cfg.entry;
        let exit = fc.cfg.exit;
        let n = blocks.len();
        let mut ins: Vec<Option<BTreeSet<String>>> = vec![None; n];
        ins[entry] = Some(BTreeSet::new());
        let mut work: Vec<usize> = (0..n).collect();
        while let Some(b) = work.pop() {
            let mut in_state: Option<BTreeSet<String>> = if b == entry {
                Some(BTreeSet::new())
            } else {
                None
            };
            for &p in &preds[b] {
                if let Some(pin) = ins[p].clone() {
                    let mut pout = pin;
                    for op in &blocks[p] {
                        self.fate_step(idx, op, &mut pout, &mut |_, _, _| {});
                    }
                    in_state = Some(match in_state {
                        None => pout,
                        // Join = intersection: cleared on EVERY path.
                        Some(cur) => cur.intersection(&pout).cloned().collect(),
                    });
                }
            }
            if in_state != ins[b] && in_state.is_some() {
                ins[b] = in_state;
                for (s, ps) in preds.iter().enumerate() {
                    if ps.contains(&b) && !work.contains(&s) {
                        work.push(s);
                    }
                }
            }
        }
        (ins, blocks, exit)
    }

    /// L13/L14 transfer for one op: update the cleared-set, invoking
    /// `on_dirty(field, kind, chain)` for reads/grows of uncleared
    /// fields (the fixpoint passes a no-op sink; the reporting sweep
    /// records).
    fn fate_step(
        &mut self,
        idx: usize,
        op: &Op,
        cleared: &mut BTreeSet<String>,
        on_dirty: &mut dyn FnMut(&str, DirtyKind, Vec<FlowStep>),
    ) {
        let path = self.graph.fns()[idx].path.clone();
        match op {
            Op::Field {
                line,
                field,
                access,
            } => match access {
                FieldAccess::Clear => {
                    cleared.insert(field.clone());
                }
                FieldAccess::Grow => {
                    if !cleared.contains(field) {
                        on_dirty(
                            field,
                            DirtyKind::Grow,
                            vec![FlowStep {
                                path,
                                line: *line,
                                message: format!("`{field}` grows here"),
                            }],
                        );
                        // One report per field per cycle: growth also
                        // establishes the buffer for later ops.
                        cleared.insert(field.clone());
                    }
                }
                FieldAccess::Read => {
                    if !cleared.contains(field) {
                        on_dirty(
                            field,
                            DirtyKind::Read,
                            vec![FlowStep {
                                path,
                                line: *line,
                                message: format!("`{field}` read here"),
                            }],
                        );
                        cleared.insert(field.clone());
                    }
                }
                // A method we don't model on the field: the kernel
                // convention is that such helpers (re)establish their
                // own buffer (`rebase_into`, `solve`), so treat as a
                // clear — a documented false-negative class.
                FieldAccess::Call { .. } => {
                    cleared.insert(field.clone());
                }
            },
            Op::ScratchCall { line, label } => {
                let targets = self.resolve(idx, *line, label);
                // Splice the first resolved target's summary (multiple
                // targets on one label are same-named methods; taking
                // the first keeps reports deterministic).
                let Some(&t) = targets.first() else { return };
                let summary = self.fate_summary(t);
                for (field, fate) in summary {
                    if !cleared.contains(&field) {
                        if let Some(chain) = &fate.dirty_read {
                            let mut full = vec![FlowStep {
                                path: path.clone(),
                                line: *line,
                                message: format!("calls {label}"),
                            }];
                            full.extend(chain.clone());
                            on_dirty(&field, DirtyKind::Read, full);
                        }
                        if let Some(chain) = &fate.dirty_grow {
                            let mut full = vec![FlowStep {
                                path: path.clone(),
                                line: *line,
                                message: format!("calls {label}"),
                            }];
                            full.extend(chain.clone());
                            on_dirty(&field, DirtyKind::Grow, full);
                        }
                    }
                    if fate.clears {
                        cleared.insert(field);
                    }
                }
            }
            _ => {}
        }
    }
}

/// Which dirty event a reporting sweep observed.
#[derive(Clone, Copy, PartialEq, Eq)]
enum DirtyKind {
    Read,
    Grow,
}

/// Run pass 4 over the workspace: L12 on every RNG-taking function in
/// the deterministic crates, L13/L14 on each root from `lint.roots`.
///
/// Returns `(file path, violation)` pairs — the path keys `lint.allow`
/// budgets — or `Err` when an L13/L14 root cannot be resolved (roots
/// must track renames, they do not skip silently).
pub fn check_dataflow(
    graph: &CallGraph,
    files: &[(String, Vec<Item>, Vec<Tok>)],
    roots: &[RootSpec],
) -> Result<Vec<(String, Violation)>, String> {
    let mut ctx = Ctx {
        graph,
        toks_by_path: files
            .iter()
            .map(|(p, _, t)| (p.as_str(), t.as_slice()))
            .collect(),
        cfgs: BTreeMap::new(),
        draw_summaries: BTreeMap::new(),
        draws_in_progress: BTreeSet::new(),
        fate_summaries: BTreeMap::new(),
        fates_in_progress: BTreeSet::new(),
    };
    let mut out: Vec<(String, Violation)> = Vec::new();

    // ---- L12: draw balance in the deterministic crates -------------
    for idx in 0..graph.fns().len() {
        let (path, line, qual) = {
            let node = &graph.fns()[idx];
            (node.path.clone(), node.line, node.qualified_name())
        };
        let deterministic = DETERMINISTIC_CRATES
            .iter()
            .any(|c| path.starts_with(&format!("crates/{c}/")));
        if !deterministic {
            continue;
        }
        let info = match ctx.fn_cfg(idx) {
            Some(fc) if !fc.sig.rng_params.is_empty() => (
                fc.cfg.preds(),
                fc.cfg
                    .blocks
                    .iter()
                    .map(|b| b.loop_head)
                    .collect::<Vec<_>>(),
                fc.cfg.blocks.iter().map(|b| b.line).collect::<Vec<_>>(),
                fc.cfg
                    .blocks
                    .iter()
                    .map(|b| b.ops.clone())
                    .collect::<Vec<_>>(),
            ),
            _ => continue,
        };
        let (preds, loop_heads, block_lines, blocks) = info;
        let ins = ctx.draw_fixpoint(idx);
        // Conflict-origin sweep: report the merge whose incoming paths
        // disagree, not every block the conflict flows through.
        for (b, in_state) in ins.iter().enumerate() {
            if *in_state != Some(Draws::Conflict) || loop_heads[b] {
                continue;
            }
            let mut incoming: Vec<u32> = Vec::new();
            let mut any_conflict_pred = false;
            for &p in &preds[b] {
                match ins[p].map(|pin| ctx.draw_transfer(idx, pin, &blocks[p])) {
                    Some(Draws::Known(k)) if !incoming.contains(&k) => {
                        incoming.push(k);
                    }
                    Some(Draws::Conflict) => any_conflict_pred = true,
                    _ => {}
                }
            }
            if incoming.len() < 2 || any_conflict_pred {
                continue; // propagated, or not a true origin
            }
            incoming.sort_unstable();
            let counts = incoming
                .iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>()
                .join(" vs ");
            out.push((
                path.clone(),
                Violation {
                    line: block_lines[b],
                    rule: Rule::L12,
                    message: format!(
                        "RNG draw count diverges across branches in `{qual}`: \
                         merging paths have consumed {counts} draws — \
                         deterministic replay requires every branch to draw \
                         equally (restructure, or budget in lint.allow with a \
                         proof comment)"
                    ),
                    flow: vec![
                        FlowStep {
                            path: path.clone(),
                            line,
                            message: format!("`{qual}` takes an RNG parameter"),
                        },
                        FlowStep {
                            path: path.clone(),
                            line: block_lines[b],
                            message: format!("paths merge with {counts} draws"),
                        },
                    ],
                },
            ));
        }
    }

    // ---- L13/L14: scratch hygiene from the declared roots ----------
    for root in roots {
        if !matches!(root.rule, Rule::L13 | Rule::L14) {
            continue;
        }
        let indices = graph.named_in_file(&root.path, &root.name);
        if indices.is_empty() {
            return Err(format!(
                "lint.roots: no function `{}` found in {} (rule {}) — roots \
                 must track renames, they do not skip silently",
                root.name,
                root.path,
                root.rule.name()
            ));
        }
        for idx in indices {
            let (line, qual) = {
                let node = &graph.fns()[idx];
                (node.line, node.qualified_name())
            };
            let Some(fc) = ctx.fn_cfg(idx) else { continue };
            if fc.sig.scratch_params.is_empty() {
                continue;
            }
            let (ins, blocks, _exit) = ctx.fate_fixpoint(idx);
            let mut reported: BTreeSet<(String, usize)> = BTreeSet::new();
            for (b, ops) in blocks.iter().enumerate() {
                let Some(in_set) = &ins[b] else { continue };
                let mut cleared = in_set.clone();
                for op in ops {
                    let root_rule = root.rule;
                    let root_path = root.path.clone();
                    let mut hits: Vec<(String, DirtyKind, Vec<FlowStep>)> = Vec::new();
                    ctx.fate_step(idx, op, &mut cleared, &mut |field, kind, chain| {
                        hits.push((field.to_owned(), kind, chain));
                    });
                    for (field, kind, chain) in hits {
                        let wanted = match root_rule {
                            Rule::L13 => kind == DirtyKind::Read,
                            _ => kind == DirtyKind::Grow,
                        };
                        // Anchor the violation at the site inside the
                        // root's own file (the chain's first step); the
                        // deep op stays visible in the flow.
                        let site_line = chain.first().map_or(line, |s| s.line);
                        let deep_line = chain.last().map_or(line, |s| s.line);
                        if !wanted || !reported.insert((field.clone(), deep_line)) {
                            continue;
                        }
                        let verb = match kind {
                            DirtyKind::Read => "read before clear",
                            DirtyKind::Grow => "grown without a dominating clear/truncate",
                        };
                        let mut flow = vec![FlowStep {
                            path: root_path.clone(),
                            line,
                            message: format!("reuse cycle rooted at `{qual}`"),
                        }];
                        flow.extend(chain);
                        out.push((
                            root_path.clone(),
                            Violation {
                                line: site_line,
                                rule: root_rule,
                                message: format!(
                                    "scratch field `{field}` {verb} in the reuse \
                                     cycle rooted at `{qual}` — stale contents \
                                     from the previous solve would leak into \
                                     this one"
                                ),
                                flow,
                            },
                        ));
                    }
                }
            }
        }
    }

    Ok(out)
}
