//! The paper-invariant style rules (L1–L8) and the rule registry
//! (L1–L14).
//!
//! | Rule | Scope | Checks |
//! |------|-------|--------|
//! | L1 | library code, all crates | no `unwrap()` / `expect()` calls, no `panic!` / `todo!` / `unimplemented!` |
//! | L2 | library code in `crates/id`, `crates/core` | no bare `as` numeric casts (use `From`/`TryFrom`/`wrapping_*`) |
//! | L3 | every file, including tests and vendor | no `unsafe` |
//! | L4 | library code in `crates/id`, `crates/freq`, `crates/core` | every `pub fn` / `pub struct` carries a doc comment |
//! | L5 | library code outside `crates/bench` | no `Instant` / `SystemTime` (wall-clock reads break deterministic simulation) |
//! | L6 | library code in deterministic crates (`core`, `sim`, `chord`, `pastry`, `tapestry`, `skipgraph`, `par`) | no `HashMap`/`HashSet` iteration (`iter`, `keys`, `values`, `drain`, `into_iter`, `for … in`) — the order is randomized; use `BTreeMap`/`BTreeSet` or sort first |
//! | L7 | `pub` items in `crates/*/src` library code | no public item unreferenced by the rest of the workspace (dead API) |
//! | L8 | library code in `crates/core`, `crates/sim` | no direct `==`/`<` comparison or `partial_cmp` on f64 cost values — use `costs_agree`-style epsilon helpers or `total_cmp` |
//! | L12 | RNG-taking functions in the deterministic crates | RNG draw balance: every branch of a function taking `&mut` RNG consumes the same draw count ([`crate::dataflow`]) |
//! | L13 | reuse cycles rooted in `lint.roots` | clear-before-read: scratch fields are written or cleared on every path before first read ([`crate::dataflow`]) |
//! | L14 | reuse cycles rooted in `lint.roots` | growth-domination: `push`/`extend`/`insert` on reused buffers is dominated by a `clear`/`truncate` ([`crate::dataflow`]) |
//!
//! "Library code" excludes `tests/`, `benches/`, `examples/`, `vendor/`
//! and — per rule, within a file — `#[cfg(test)]` regions. Matching runs
//! on the scanner's blanked text ([`crate::scan`]), so occurrences inside
//! strings, comments and doc-test fences never fire; L6–L8 additionally
//! consult the item tree and workspace symbol table built by
//! [`crate::items`] / [`crate::symbols`].

use std::collections::BTreeSet;

use crate::items::{ident_at, punct_at, tokenize, Tok, TokKind};
use crate::scan::{scan, test_regions, ScannedLine};

/// Rule identifiers, printed in diagnostics and used in `lint.allow`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// No `unwrap()`/`expect()`/`panic!`/`todo!`/`unimplemented!` in
    /// library code.
    L1,
    /// No bare `as` numeric casts in `crates/id` and `crates/core`.
    L2,
    /// No `unsafe` anywhere.
    L3,
    /// Doc comments on `pub fn`/`pub struct` in id/freq/core.
    L4,
    /// No wall-clock reads (`Instant`, `SystemTime`) in deterministic
    /// code paths.
    L5,
    /// No `HashMap`/`HashSet` iteration in deterministic crates.
    L6,
    /// No unreferenced `pub` item in internal crates.
    L7,
    /// No direct f64 cost comparison in `core`/`sim` library code.
    L8,
    /// No allocating construct reachable from the `solve_into` kernels.
    L9,
    /// No panic construct reachable from the fault walks.
    L10,
    /// No entropy/time/ambient-state source reachable from deterministic
    /// entry points.
    L11,
    /// RNG draw balance: same draw count on every branch of a function
    /// taking `&mut` RNG in the deterministic crates.
    L12,
    /// Clear-before-read on scratch fields in rooted reuse cycles.
    L13,
    /// Growth-domination: buffer growth dominated by clear/truncate in
    /// rooted reuse cycles.
    L14,
}

/// Every rule, in order — the SARIF emitter indexes into this.
pub const ALL_RULES: [Rule; 14] = [
    Rule::L1,
    Rule::L2,
    Rule::L3,
    Rule::L4,
    Rule::L5,
    Rule::L6,
    Rule::L7,
    Rule::L8,
    Rule::L9,
    Rule::L10,
    Rule::L11,
    Rule::L12,
    Rule::L13,
    Rule::L14,
];

impl Rule {
    /// The rule's name as printed in diagnostics and `lint.allow`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::L1 => "L1",
            Rule::L2 => "L2",
            Rule::L3 => "L3",
            Rule::L4 => "L4",
            Rule::L5 => "L5",
            Rule::L6 => "L6",
            Rule::L7 => "L7",
            Rule::L8 => "L8",
            Rule::L9 => "L9",
            Rule::L10 => "L10",
            Rule::L11 => "L11",
            Rule::L12 => "L12",
            Rule::L13 => "L13",
            Rule::L14 => "L14",
        }
    }

    /// Parse a rule name as it appears in `lint.allow`.
    pub fn parse(name: &str) -> Option<Rule> {
        match name {
            "L1" => Some(Rule::L1),
            "L2" => Some(Rule::L2),
            "L3" => Some(Rule::L3),
            "L4" => Some(Rule::L4),
            "L5" => Some(Rule::L5),
            "L6" => Some(Rule::L6),
            "L7" => Some(Rule::L7),
            "L8" => Some(Rule::L8),
            "L9" => Some(Rule::L9),
            "L10" => Some(Rule::L10),
            "L11" => Some(Rule::L11),
            "L12" => Some(Rule::L12),
            "L13" => Some(Rule::L13),
            "L14" => Some(Rule::L14),
            _ => None,
        }
    }

    /// One-line summary, used in SARIF rule metadata.
    pub fn short_desc(self) -> &'static str {
        match self {
            Rule::L1 => "no unwrap/expect/panic in library code",
            Rule::L2 => "no bare `as` numeric casts in id/core",
            Rule::L3 => "no unsafe anywhere",
            Rule::L4 => "doc comments on public API in id/freq/core",
            Rule::L5 => "no wall-clock reads in deterministic code",
            Rule::L6 => "no HashMap/HashSet iteration in deterministic crates",
            Rule::L7 => "no unreferenced pub item in internal crates",
            Rule::L8 => "no direct f64 cost comparison in core/sim",
            Rule::L9 => "no allocating construct reachable from solve_into kernels",
            Rule::L10 => "no panic construct reachable from the fault walks",
            Rule::L11 => "no ambient-state source reachable from deterministic entry points",
            Rule::L12 => "RNG draw count balanced across branches in deterministic crates",
            Rule::L13 => "scratch fields cleared before first read in rooted reuse cycles",
            Rule::L14 => "buffer growth dominated by clear/truncate in rooted reuse cycles",
        }
    }

    /// Full rationale with a paper-section citation, printed by
    /// `--explain` and embedded in SARIF rule metadata.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::L1 => {
                "L1 — no `unwrap()`, `expect()`, `panic!`, `todo!` or `unimplemented!` in \
                 library code.\n\nThe simulator replays the paper's experiments (Deb, Linga, \
                 Rastogi & Srinivasan, ICDE 2008, §VI) over thousands of configurations; a \
                 panic in one sweep aborts the whole figure. Library code returns typed \
                 errors, or concentrates a proved invariant in a single allowlisted helper \
                 whose budget `lint.allow` tracks. Tests and benches are exempt."
            }
            Rule::L2 => {
                "L2 — no bare `as` numeric casts in `crates/id` and `crates/core`.\n\nThe \
                 identifier space is the paper's 128-bit ring (§II): silent truncation of \
                 an `Id` by `as` corrupts ring arithmetic at the wrap-around boundary. Use \
                 `From`/`TryFrom` or the `cast.rs`/`convert.rs` helpers, which carry \
                 regression tests at the ring boundary."
            }
            Rule::L3 => {
                "L3 — no `unsafe`, anywhere (tests and vendor included).\n\nNothing in the \
                 paper's algorithms (§IV–§V) needs unchecked memory access; the workspace \
                 also sets `unsafe_code = \"forbid\"`, and the lint keeps vendored shims \
                 honest too."
            }
            Rule::L4 => {
                "L4 — every `pub fn`/`pub struct` in `crates/id`, `crates/freq` and \
                 `crates/core` carries a doc comment.\n\nThese crates implement the \
                 paper's definitions directly (the id space of §II, the space-saving \
                 frequency sketch of §III, the cost model eq. 1 and DP of §IV); each \
                 public item's doc names the paper construct it realizes."
            }
            Rule::L5 => {
                "L5 — no `Instant`/`SystemTime` in library code outside `crates/bench`.\n\n\
                 The simulation clock is event-driven (§VI methodology): wall-clock reads \
                 make runs irreproducible and break the paired aware-vs-oblivious \
                 comparisons. Real time belongs only to the benchmark harness."
            }
            Rule::L6 => {
                "L6 — no `HashMap`/`HashSet` iteration (`iter`, `keys`, `values`, `drain`, \
                 `into_iter`, `for … in`) in the deterministic crates (`core`, `sim`, \
                 `chord`, `pastry`, `tapestry`, `skipgraph`, `par`).\n\nstd's hash \
                 iteration order is randomized per process by `RandomState`, so any \
                 decision derived from it differs run to run — violating the determinism \
                 contract that parallel sweeps are bit-identical to serial (the paired \
                 experiment replay of §VI). Use `BTreeMap`/`BTreeSet`, or collect and \
                 sort before iterating; order-insensitive sinks (`count`, `min`, `max`, \
                 …) are recognized and exempt."
            }
            Rule::L7 => {
                "L7 — no `pub` item in `crates/*/src` that nothing else in the workspace \
                 references.\n\nDead public API rots: it escapes testing, constrains \
                 refactors and misleads readers about which parts of the paper's \
                 machinery (§IV–§V) are actually exercised by the experiments. Demote to \
                 `pub(crate)`, delete, or record intentional surface under an `L7` budget \
                 in `lint.allow`. Detection is name-based over the workspace symbol \
                 table, so a flagged item is truly unnamed anywhere else."
            }
            Rule::L8 => {
                "L8 — no direct `==`/`<`-family comparison or `partial_cmp` on f64 cost \
                 values in `crates/core`/`crates/sim` library code.\n\nThe paper's cost \
                 function (eq. 1, §IV: Cost(A_s) = Σ f_v · (1 + d(v, N_s ∪ A_s))) is \
                 evaluated along different floating-point summation orders by the fast \
                 and naive DP formulations; exact comparison makes tie-breaks depend on \
                 rounding noise. Compare through the `costs_agree` epsilon helpers of \
                 `crates/core/src/invariants.rs` or through `f64::total_cmp`. Sign \
                 checks against a zero literal are exempt."
            }
            Rule::L9 => {
                "L9 — no allocating construct (`Vec::new`, `vec!`, `collect`, `to_vec`, \
                 `to_owned`, `to_string`, `Box::new`, `String::from`, `format!`, \
                 `.clone()`) in any function reachable from the workspace `solve_into` \
                 kernels.\n\nThe zero-alloc contract (DESIGN.md \"Memory layout & \
                 workspace reuse\") says a warmed `ChordWorkspace`/`PastryWorkspace` \
                 solve allocates nothing in steady state; `perf_baseline`'s counting \
                 allocator enforces it dynamically on the kernels it happens to run. \
                 L9 is the static complement: the interprocedural pass (DESIGN.md \
                 \"Interprocedural pass: call graph & reachability\") walks the call \
                 graph from the `L9` roots in `lint.roots` and flags any allocating \
                 construct on any reachable path — including paths no benchmark \
                 exercises. Hoist the allocation into the workspace, or budget the \
                 site in `lint.allow` with a proof that it is cold (error/diagnostic \
                 paths only)."
            }
            Rule::L10 => {
                "L10 — no panic construct (`unwrap`, `expect`, `panic!`, \
                 `unreachable!`, `todo!`, `unimplemented!`, direct `[i]` indexing) in \
                 any function reachable from the fault walks \
                 (`*_with_aux_faults`).\n\nPR 5's pastry `proximity()` panic on a \
                 stale pointer is the bug class: a fault walk exists to *measure* \
                 degraded routing (DESIGN.md §10 \"Fault model & degradation \
                 semantics\"), so every state a fault plan can corrupt — dead \
                 neighbors, stale auxiliary pointers, unknown ids — must degrade to a \
                 typed `LookupFailure`, never abort the sweep. The interprocedural \
                 pass (DESIGN.md \"Interprocedural pass: call graph & reachability\") \
                 walks the call graph from the `L10` roots in `lint.roots`; a \
                 `.expect(\"proof\")` whose message states why the failure is \
                 unreachable may be admitted through a reviewed `lint.allow` budget, \
                 mirroring the L1 convention."
            }
            Rule::L11 => {
                "L11 — no entropy, wall-clock or ambient-state source \
                 (`Instant::now`, `SystemTime::now`, `RandomState`, \
                 `thread::spawn` outside `peercache-par`, `std::env` reads) in any \
                 function reachable from the deterministic entry points.\n\nThe \
                 determinism contract (DESIGN.md \"Threading model & the determinism \
                 contract\") promises bit-identical figure tables at any thread \
                 count; L5 and L6 ban wall-clock reads and hash-order iteration at \
                 the expression site, and L11 extends the same contract to whole \
                 call chains: the interprocedural pass (DESIGN.md \"Interprocedural \
                 pass: call graph & reachability\") walks the call graph from the \
                 `L11` roots in `lint.roots` and flags ambient sources anywhere \
                 beneath them. `peercache-par` is the sanctioned ambient boundary — \
                 thread-count resolution (`PEERCACHE_THREADS`, `thread::spawn`) \
                 lives there precisely because the contract makes results \
                 independent of it."
            }
            Rule::L12 => {
                "L12 — RNG draw balance: every function in the deterministic crates \
                 that takes an `&mut` RNG parameter must consume the same number of \
                 draw calls on every branch.\n\nEvery bit-identity guarantee in this \
                 reproduction — replayable fault walks, shard/thread-count parity, \
                 the fig3 goldens — rests on the RNG stream advancing identically \
                 across refactors (§VI replay methodology). A draw moved into one \
                 `match` arm silently shifts every subsequent decision in the run. \
                 The dataflow pass (DESIGN.md \"Dataflow pass: CFG, draw-balance, \
                 and buffer hygiene\") builds an intraprocedural CFG, counts draws \
                 along every path with callee summaries from the call graph, and \
                 flags any merge whose incoming paths disagree. Loop-carried and \
                 data-dependent draw counts (`shuffle`, macros, closures) widen to \
                 unknown and stay silent — the rule never reports a false count. \
                 Genuinely branch-dependent draws need a `lint.allow` budget with a \
                 proof comment explaining why the divergence is replay-safe."
            }
            Rule::L13 => {
                "L13 — clear-before-read: scratch/workspace fields used in a reuse \
                 cycle rooted in `lint.roots` must be written, `clear()`ed, or \
                 re-established on every path before their first read.\n\nThe \
                 zero-alloc kernels (DESIGN.md \"Memory layout & workspace reuse\") \
                 reuse `ChordWorkspace`/`PastryWorkspace` buffers across solves; a \
                 path that reads a buffer before re-initializing it leaks the \
                 previous problem's state into this one — the dirty-buffer \
                 interleave class `workspace_equivalence.rs` probes with 400+ \
                 seeds. L13 is the static form: the dataflow pass (DESIGN.md \
                 \"Dataflow pass: CFG, draw-balance, and buffer hygiene\") tracks \
                 the cleared-field set along every path from each `L13` root in \
                 `lint.roots` (join = intersection, so \"cleared\" means cleared on \
                 EVERY incoming path), splicing per-field callee summaries through \
                 the call graph, and flags the first uncleared read."
            }
            Rule::L14 => {
                "L14 — growth-domination: `push`/`extend`/`insert`/`append` on a \
                 reused workspace buffer along an `L14`-rooted kernel must be \
                 dominated by a `clear`/`truncate` in the same reuse cycle.\n\nThe \
                 steady-state zero-alloc contract (DESIGN.md \"Memory layout & \
                 workspace reuse\") holds only if growth never compounds across \
                 cycles: a `push` onto a buffer that was not emptied this cycle \
                 grows without bound and eventually reallocates past the warmed \
                 capacity, which the `count-allocs` runtime gate only catches on \
                 the inputs a benchmark happens to run. L14 is the static \
                 complement: the dataflow pass (DESIGN.md \"Dataflow pass: CFG, \
                 draw-balance, and buffer hygiene\") reuses the L13 cleared-set \
                 analysis and flags growth on any path where no `clear`/`truncate` \
                 dominates it."
            }
        }
    }
}

/// What part of the tree a file belongs to; decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Crate `src/` code (and the root package's `src/`).
    Lib,
    /// Integration tests under a `tests/` directory.
    Test,
    /// Benchmarks (`benches/` directories and all of `crates/bench`).
    Bench,
    /// Example programs.
    Example,
    /// Vendored dependency stand-ins under `vendor/`.
    Vendor,
}

/// Per-file context the rules consult.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    /// Which part of the tree the file belongs to.
    pub kind: FileKind,
}

impl FileCtx {
    /// Classify a workspace-relative path.
    pub fn classify(path: &str) -> FileCtx {
        let kind = if path.starts_with("vendor/") {
            FileKind::Vendor
        } else if path.starts_with("crates/bench/") || path.contains("/benches/") {
            FileKind::Bench
        } else if path.contains("/tests/") || path.starts_with("tests/") {
            FileKind::Test
        } else if path.contains("/examples/") || path.starts_with("examples/") {
            FileKind::Example
        } else {
            FileKind::Lib
        };
        FileCtx {
            path: path.to_owned(),
            kind,
        }
    }

    fn in_crate(&self, name: &str) -> bool {
        self.path.starts_with(&format!("crates/{name}/"))
    }
}

/// One step of a reachability call chain, root-first: the root's
/// declaration, each intermediate call site, and finally the violating
/// construct itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowStep {
    /// Workspace-relative path of the step's file.
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// What happens at this step (`root fn …`, `calls …`, the construct).
    pub message: String,
}

/// One rule violation at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// 1-based source line.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
    /// For reachability rules (L9–L11): the call chain from a declared
    /// root to the construct, rendered into SARIF `codeFlows`. Empty for
    /// the per-file and symbol-table rules.
    pub flow: Vec<FlowStep>,
}

const NUMERIC_TYPES: [&str; 14] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// The crates bound by the PR 2 determinism contract (parallel sweeps
/// bit-identical to serial); rule L6 applies to their library code and
/// rule L12 to their RNG-taking functions.
pub(crate) const DETERMINISTIC_CRATES: [&str; 9] = [
    "core",
    "sim",
    "chord",
    "pastry",
    "tapestry",
    "skipgraph",
    "par",
    "faults",
    "node",
];

/// Run every applicable per-file rule over one source text and return
/// its violations, ordered by line. (Convenience wrapper over
/// [`check_tokens`] that scans and tokenizes itself; the engine's
/// two-pass driver calls [`check_tokens`] directly to reuse pass-1
/// artifacts.)
pub fn check(ctx: &FileCtx, source: &str) -> Vec<Violation> {
    let lines = scan(source);
    let toks = tokenize(&lines);
    check_tokens(ctx, &lines, &toks)
}

/// Run every applicable per-file rule (all of L1–L8 except the
/// workspace-level L7) over one file's scanned lines and token stream.
pub fn check_tokens(ctx: &FileCtx, lines: &[ScannedLine], toks: &[Tok]) -> Vec<Violation> {
    let in_test = test_regions(lines);
    let mut out = Vec::new();

    let lib = ctx.kind == FileKind::Lib;
    let l1 = lib;
    let l2 = lib && (ctx.in_crate("id") || ctx.in_crate("core"));
    let l4 = lib && (ctx.in_crate("id") || ctx.in_crate("freq") || ctx.in_crate("core"));
    let l5 = lib;
    let l6 = lib && DETERMINISTIC_CRATES.iter().any(|c| ctx.in_crate(c));
    let l8 = lib
        && (ctx.in_crate("core")
            || ctx.in_crate("sim")
            || ctx.in_crate("faults")
            || ctx.in_crate("node"));

    let tested = |line: usize| in_test.get(line).copied().unwrap_or(false);

    for (i, tok) in toks.iter().enumerate() {
        let TokKind::Ident(name) = &tok.kind else {
            continue;
        };

        // L3 applies everywhere, test regions included.
        if name == "unsafe" {
            out.push(Violation {
                flow: Vec::new(),
                line: tok.line + 1,
                rule: Rule::L3,
                message: "`unsafe` is forbidden throughout the workspace (rule L3)".to_owned(),
            });
        }
        if tested(tok.line) {
            continue;
        }

        if l1 {
            let method_call = punct_at(toks, i.wrapping_sub(1)) == Some('.')
                && punct_at(toks, i + 1) == Some('(');
            let bang_macro = punct_at(toks, i + 1) == Some('!');
            if (name == "unwrap" || name == "expect") && method_call {
                out.push(Violation {
                    flow: Vec::new(),
                    line: tok.line + 1,
                    rule: Rule::L1,
                    message: format!(
                        "`.{name}()` in library code — return an error or \
                         concentrate the proof in an allowlisted helper (rule L1)"
                    ),
                });
            } else if (name == "panic" || name == "todo" || name == "unimplemented") && bang_macro {
                out.push(Violation {
                    flow: Vec::new(),
                    line: tok.line + 1,
                    rule: Rule::L1,
                    message: format!("`{name}!` in library code (rule L1)"),
                });
            }
        }

        if l2 && name == "as" {
            if let Some(target) = ident_at(toks, i + 1) {
                if NUMERIC_TYPES.contains(&target) {
                    out.push(Violation {
                        flow: Vec::new(),
                        line: tok.line + 1,
                        rule: Rule::L2,
                        message: format!(
                            "bare `as {target}` cast — use `From`/`TryFrom`/`wrapping_*` \
                             (rule L2)"
                        ),
                    });
                }
            }
        }

        if l5 && (name == "Instant" || name == "SystemTime") {
            out.push(Violation {
                flow: Vec::new(),
                line: tok.line + 1,
                rule: Rule::L5,
                message: format!(
                    "`{name}` in deterministic code — wall-clock reads break \
                     reproducible simulation (rule L5)"
                ),
            });
        }

        if l4 && name == "pub" {
            if let Some(v) = check_pub_item(lines, toks, i) {
                out.push(v);
            }
        }
    }

    if l6 {
        check_hash_iteration(toks, &in_test, &mut out);
    }
    if l8 {
        check_cost_comparisons(toks, &in_test, &mut out);
    }

    out.sort_by_key(|v| (v.line, v.rule));
    out
}

/// L4: a `pub fn` / `pub struct` (ignoring `pub(...)` restricted
/// visibility and skipping `const`/`async`/`extern` modifiers) must be
/// preceded by a doc comment, looking backwards over attribute and blank
/// lines.
fn check_pub_item(lines: &[ScannedLine], toks: &[Tok], pub_idx: usize) -> Option<Violation> {
    let mut j = pub_idx + 1;
    if punct_at(toks, j) == Some('(') {
        return None; // pub(crate) and friends are not public API
    }
    while matches!(ident_at(toks, j), Some("const" | "async" | "extern")) {
        j += 1;
    }
    let item = ident_at(toks, j)?;
    if item != "fn" && item != "struct" {
        return None;
    }
    let name = ident_at(toks, j + 1).unwrap_or("?").to_owned();
    let line = toks[pub_idx].line;
    let mut back = line;
    while back > 0 {
        back -= 1;
        let prev = &lines[back];
        if prev.doc {
            return None;
        }
        let trimmed = prev.code.trim_start();
        let skippable = trimmed.is_empty() || trimmed.starts_with("#[") || trimmed.starts_with(']');
        if !skippable {
            break;
        }
    }
    Some(Violation {
        flow: Vec::new(),
        line: line + 1,
        rule: Rule::L4,
        message: format!("missing doc comment on `pub {item} {name}` (rule L4)"),
    })
}

// ---------------------------------------------------------------------
// L6 — HashMap/HashSet iteration in deterministic crates.
// ---------------------------------------------------------------------

const HASH_ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Sinks that make hash-ordered iteration harmless: explicit sorts,
/// conversion into ordered collections, and order-insensitive
/// aggregations over unique elements.
const ORDER_SAFE_SINKS: [&str; 15] = [
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "count",
    "min",
    "max",
    "min_by_key",
    "max_by_key",
    "all",
    "any",
];

/// Collect the local names this file binds to a `HashMap`/`HashSet`:
/// type-annotated bindings/fields/params (`name: [path::]HashMap<…>`)
/// and constructor assignments (`name = [path::]HashMap::new()` and
/// friends). Bindings inside `#[cfg(test)]` regions are ignored — a
/// test-local `HashSet` must not taint a same-named library binding.
fn hash_typed_names(toks: &[Tok], in_test: &[bool]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        let Some(ty) = ident_at(toks, i) else {
            continue;
        };
        if ty != "HashMap" && ty != "HashSet" {
            continue;
        }
        if in_test.get(toks[i].line).copied().unwrap_or(false) {
            continue;
        }
        // Swallow a leading path (`std :: collections ::` → the first
        // segment), walking `seg ::` pairs backwards.
        let mut j = i;
        while j >= 3
            && punct_at(toks, j - 1) == Some(':')
            && punct_at(toks, j - 2) == Some(':')
            && ident_at(toks, j - 3).is_some()
        {
            j -= 3;
        }
        // Annotation form: `name : [& mut] Path…HashMap`.
        let mut k = j.wrapping_sub(1);
        while punct_at(toks, k) == Some('&') || ident_at(toks, k) == Some("mut") {
            k = k.wrapping_sub(1);
        }
        if punct_at(toks, k) == Some(':') && punct_at(toks, k.wrapping_sub(1)) != Some(':') {
            if let Some(name) = ident_at(toks, k.wrapping_sub(1)) {
                names.insert(name.to_owned());
                continue;
            }
        }
        // Constructor form: `name = HashMap :: new(…)`.
        if punct_at(toks, j.wrapping_sub(1)) == Some('=')
            && !matches!(
                punct_at(toks, j.wrapping_sub(2)),
                Some('=' | '!' | '<' | '>')
            )
            && matches!(
                ident_at(toks, i + 3),
                Some("new" | "with_capacity" | "default" | "from")
            )
        {
            if let Some(name) = ident_at(toks, j.wrapping_sub(2)) {
                names.insert(name.to_owned());
            }
        }
    }
    names
}

/// True when the statement containing token `i` (looking forward across
/// at most one statement boundary, to catch the collect-then-sort
/// idiom) reaches an order-restoring or order-insensitive sink.
fn order_safe_after(toks: &[Tok], i: usize) -> bool {
    let mut semis = 0usize;
    for tok in toks.iter().skip(i).take(96) {
        match &tok.kind {
            TokKind::Punct(';') => {
                semis += 1;
                if semis == 2 {
                    return false;
                }
            }
            TokKind::Ident(s) if ORDER_SAFE_SINKS.contains(&s.as_str()) => return true,
            _ => {}
        }
    }
    false
}

fn check_hash_iteration(toks: &[Tok], in_test: &[bool], out: &mut Vec<Violation>) {
    let hashed = hash_typed_names(toks, in_test);
    if hashed.is_empty() {
        return;
    }
    for (i, tok) in toks.iter().enumerate() {
        let TokKind::Ident(name) = &tok.kind else {
            continue;
        };
        if !hashed.contains(name) || in_test.get(tok.line).copied().unwrap_or(false) {
            continue;
        }
        // Method form: `name.iter()`, `name.keys()`, …
        if punct_at(toks, i + 1) == Some('.') {
            if let Some(method) = ident_at(toks, i + 2) {
                if HASH_ITER_METHODS.contains(&method) && punct_at(toks, i + 3) == Some('(') {
                    if !order_safe_after(toks, i + 2) {
                        out.push(Violation {
                            flow: Vec::new(),
                            line: toks[i + 2].line + 1,
                            rule: Rule::L6,
                            message: format!(
                                "`{name}.{method}()` iterates a std hash collection in a \
                                 deterministic crate — RandomState randomizes the order; \
                                 use BTreeMap/BTreeSet or sort first (rule L6)"
                            ),
                        });
                    }
                    continue;
                }
            }
        }
        // Loop form: `for pat in [&][mut] name { … }`.
        let mut k = i.wrapping_sub(1);
        while punct_at(toks, k) == Some('&') || ident_at(toks, k) == Some("mut") {
            k = k.wrapping_sub(1);
        }
        if ident_at(toks, k) == Some("in") && !order_safe_after(toks, i) {
            out.push(Violation {
                flow: Vec::new(),
                line: tok.line + 1,
                rule: Rule::L6,
                message: format!(
                    "`for … in {name}` iterates a std hash collection in a deterministic \
                     crate — RandomState randomizes the order; use BTreeMap/BTreeSet or \
                     sort first (rule L6)"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// L8 — direct f64 cost comparisons in core/sim library code.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CmpOp {
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
}

impl CmpOp {
    fn is_ordering(self) -> bool {
        !matches!(self, CmpOp::Eq | CmpOp::Ne)
    }

    fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Gt => ">",
            CmpOp::Le => "<=",
            CmpOp::Ge => ">=",
        }
    }
}

/// Idents that smell like eq. 1 cost values: any ordering comparison
/// near one of these is suspect.
fn cost_flavored(name: &str) -> bool {
    let lower = name.chars().next().is_some_and(char::is_lowercase);
    lower && (name.contains("cost") || name.contains("weight") || name.contains("gain"))
}

/// Names declared `: f64` in this file (bindings, fields, parameters),
/// skipping `#[cfg(test)]` declarations.
fn declared_f64_names(toks: &[Tok], in_test: &[bool]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        if ident_at(toks, i) != Some("f64") {
            continue;
        }
        if in_test.get(toks[i].line).copied().unwrap_or(false) {
            continue;
        }
        let mut k = i.wrapping_sub(1);
        while punct_at(toks, k) == Some('&') || ident_at(toks, k) == Some("mut") {
            k = k.wrapping_sub(1);
        }
        if punct_at(toks, k) == Some(':') && punct_at(toks, k.wrapping_sub(1)) != Some(':') {
            if let Some(name) = ident_at(toks, k.wrapping_sub(1)) {
                names.insert(name.to_owned());
            }
        }
    }
    names
}

/// Punctuation that terminates an operand window.
fn window_stop(c: char) -> bool {
    matches!(c, ';' | '{' | '}' | ',' | '=' | '<' | '>' | '!' | '&' | '|')
}

/// Collect the identifiers in the operand window on one side of an
/// operator: up to 24 tokens, stopping at statement/expression breaks.
fn operand_idents(toks: &[Tok], start: usize, forward: bool) -> Vec<&str> {
    let mut idents = Vec::new();
    let mut idx = start;
    for _ in 0..24 {
        let Some(tok) = toks.get(idx) else { break };
        match &tok.kind {
            TokKind::Punct(c) if window_stop(*c) => break,
            TokKind::Ident(s) => idents.push(s.as_str()),
            TokKind::Punct(_) => {}
        }
        if forward {
            idx += 1;
        } else if idx == 0 {
            break;
        } else {
            idx -= 1;
        }
    }
    idents
}

/// True when the statement around token `i` mentions a sanctioned
/// comparison helper — an `EPS` constant, `costs_agree`, or `total_cmp`
/// — meaning the raw operator is part of an epsilon-window idiom.
fn sanctioned_nearby(toks: &[Tok], i: usize) -> bool {
    let hit = |s: &str| s.contains("EPS") || s == "costs_agree" || s == "total_cmp";
    for idx in i..i + 48 {
        match toks.get(idx).map(|t| &t.kind) {
            Some(TokKind::Punct(';' | '{' | '}')) => break,
            Some(TokKind::Ident(s)) if hit(s) => return true,
            None => break,
            _ => {}
        }
    }
    let mut idx = i;
    for _ in 0..48 {
        match toks.get(idx).map(|t| &t.kind) {
            Some(TokKind::Punct(';' | '{' | '}')) => break,
            Some(TokKind::Ident(s)) if hit(s) => return true,
            _ => {}
        }
        if idx == 0 {
            break;
        }
        idx -= 1;
    }
    false
}

/// True when the operand adjacent to the operator (at `before` looking
/// back, or `after` looking forward) is the literal `0` / `0.0`.
fn zero_operand(toks: &[Tok], before: usize, after: usize) -> bool {
    ident_at(toks, before) == Some("0") || ident_at(toks, after) == Some("0")
}

fn check_cost_comparisons(toks: &[Tok], in_test: &[bool], out: &mut Vec<Violation>) {
    let f64_names = declared_f64_names(toks, in_test);

    let mut i = 0usize;
    while i < toks.len() {
        let tok = &toks[i];
        if in_test.get(tok.line).copied().unwrap_or(false) {
            i += 1;
            continue;
        }

        // `.partial_cmp(` — always a violation in scope: eq. 1 costs are
        // compared via total_cmp or epsilon helpers, never NaN-partial.
        if let TokKind::Ident(name) = &tok.kind {
            if name == "partial_cmp"
                && punct_at(toks, i.wrapping_sub(1)) == Some('.')
                && punct_at(toks, i + 1) == Some('(')
                && !sanctioned_nearby(toks, i)
            {
                out.push(Violation {
                    flow: Vec::new(),
                    line: tok.line + 1,
                    rule: Rule::L8,
                    message: "`.partial_cmp()` on f64 in core/sim library code — use \
                              `f64::total_cmp` or the `costs_agree` epsilon helpers \
                              (rule L8)"
                        .to_owned(),
                });
            }
            i += 1;
            continue;
        }

        // Operator detection over single-char punct tokens.
        let c1 = match &tok.kind {
            TokKind::Punct(c) => *c,
            TokKind::Ident(_) => {
                i += 1;
                continue;
            }
        };
        let c2 = punct_at(toks, i + 1);
        let (op, span) = match (c1, c2) {
            ('=', Some('=')) => (Some(CmpOp::Eq), 2),
            ('!', Some('=')) => (Some(CmpOp::Ne), 2),
            ('<', Some('=')) => (Some(CmpOp::Le), 2),
            ('>', Some('=')) => (Some(CmpOp::Ge), 2),
            ('<', Some('<')) | ('>', Some('>')) | ('-', Some('>')) | ('=', Some('>')) => (None, 2),
            ('<', _) => {
                // Generic-argument heuristic: `Vec<…>`, `::<…>`,
                // `fn name<…>`, `impl<…>` — skip the whole bracketed
                // group so its `>` is not misread as an op.
                let prev = ident_at(toks, i.wrapping_sub(1));
                let generic = prev
                    .is_some_and(|s| s.chars().next().is_some_and(char::is_uppercase))
                    || punct_at(toks, i.wrapping_sub(1)) == Some(':')
                    || prev == Some("impl")
                    || (prev.is_some() && ident_at(toks, i.wrapping_sub(2)) == Some("fn"));
                if generic {
                    skip_generic_group(toks, &mut i);
                    continue;
                }
                (Some(CmpOp::Lt), 1)
            }
            ('>', _) => (Some(CmpOp::Gt), 1),
            _ => (None, 1),
        };
        let Some(op) = op else {
            i += span;
            continue;
        };

        let before = i.wrapping_sub(1);
        let after = i + span;
        let back_idents = operand_idents(toks, before, false);
        let fwd_idents = operand_idents(toks, after, true);
        let all_idents = back_idents.iter().chain(fwd_idents.iter());

        let flavored = all_idents.clone().any(|s| cost_flavored(s));
        let declared = all_idents.clone().any(|s| f64_names.contains(*s));

        let fires = flavored || (declared && !op.is_ordering());
        let exempt =
            (op.is_ordering() && zero_operand(toks, before, after)) || sanctioned_nearby(toks, i);
        if fires && !exempt {
            out.push(Violation {
                flow: Vec::new(),
                line: tok.line + 1,
                rule: Rule::L8,
                message: format!(
                    "direct `{}` comparison on f64 cost values — use the `costs_agree` \
                     epsilon helpers or `f64::total_cmp` (rule L8)",
                    op.symbol()
                ),
            });
        }
        i += span;
    }
}

/// Skip a `<…>` generic-argument group starting at `*i` (pointing at the
/// `<`), tolerating nesting; gives up at statement breaks so a stray
/// less-than never swallows the file.
fn skip_generic_group(toks: &[Tok], i: &mut usize) {
    let mut depth = 0usize;
    let start = *i;
    while *i < toks.len() {
        match punct_at(toks, *i) {
            Some('<') => depth += 1,
            Some('>') => {
                depth -= 1;
                if depth == 0 {
                    *i += 1;
                    return;
                }
            }
            Some(';' | '{') => {
                // Not generics after all; re-scan past the `<` only.
                *i = start + 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
    *i = start + 1;
}
