//! The five paper-invariant style rules (L1–L5).
//!
//! | Rule | Scope | Checks |
//! |------|-------|--------|
//! | L1 | library code, all crates | no `unwrap()` / `expect()` calls, no `panic!` / `todo!` / `unimplemented!` |
//! | L2 | library code in `crates/id`, `crates/core` | no bare `as` numeric casts (use `From`/`TryFrom`/`wrapping_*`) |
//! | L3 | every file, including tests and vendor | no `unsafe` |
//! | L4 | library code in `crates/id`, `crates/freq`, `crates/core` | every `pub fn` / `pub struct` carries a doc comment |
//! | L5 | library code outside `crates/bench` | no `Instant` / `SystemTime` (wall-clock reads break deterministic simulation) |
//!
//! "Library code" excludes `tests/`, `benches/`, `examples/`, `vendor/`
//! and — per rule, within a file — `#[cfg(test)]` regions. Matching is
//! token-based on the scanner's blanked text, so occurrences inside
//! strings, comments and doc-test fences never fire.

use crate::scan::{scan, test_regions, ScannedLine};

/// Rule identifiers, printed in diagnostics and used in `lint.allow`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// No `unwrap()`/`expect()`/`panic!`/`todo!`/`unimplemented!` in
    /// library code.
    L1,
    /// No bare `as` numeric casts in `crates/id` and `crates/core`.
    L2,
    /// No `unsafe` anywhere.
    L3,
    /// Doc comments on `pub fn`/`pub struct` in id/freq/core.
    L4,
    /// No wall-clock reads (`Instant`, `SystemTime`) in deterministic
    /// code paths.
    L5,
}

impl Rule {
    /// The rule's name as printed in diagnostics and `lint.allow`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::L1 => "L1",
            Rule::L2 => "L2",
            Rule::L3 => "L3",
            Rule::L4 => "L4",
            Rule::L5 => "L5",
        }
    }

    /// Parse a rule name as it appears in `lint.allow`.
    pub fn parse(name: &str) -> Option<Rule> {
        match name {
            "L1" => Some(Rule::L1),
            "L2" => Some(Rule::L2),
            "L3" => Some(Rule::L3),
            "L4" => Some(Rule::L4),
            "L5" => Some(Rule::L5),
            _ => None,
        }
    }
}

/// What part of the tree a file belongs to; decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Crate `src/` code (and the root package's `src/`).
    Lib,
    /// Integration tests under a `tests/` directory.
    Test,
    /// Benchmarks (`benches/` directories and all of `crates/bench`).
    Bench,
    /// Example programs.
    Example,
    /// Vendored dependency stand-ins under `vendor/`.
    Vendor,
}

/// Per-file context the rules consult.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    /// Which part of the tree the file belongs to.
    pub kind: FileKind,
}

impl FileCtx {
    /// Classify a workspace-relative path.
    pub fn classify(path: &str) -> FileCtx {
        let kind = if path.starts_with("vendor/") {
            FileKind::Vendor
        } else if path.starts_with("crates/bench/") || path.contains("/benches/") {
            FileKind::Bench
        } else if path.contains("/tests/") || path.starts_with("tests/") {
            FileKind::Test
        } else if path.contains("/examples/") || path.starts_with("examples/") {
            FileKind::Example
        } else {
            FileKind::Lib
        };
        FileCtx {
            path: path.to_owned(),
            kind,
        }
    }

    fn in_crate(&self, name: &str) -> bool {
        self.path.starts_with(&format!("crates/{name}/"))
    }
}

/// One rule violation at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// 1-based source line.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum TokKind {
    Ident(String),
    Punct(char),
}

#[derive(Debug, Clone)]
struct Tok {
    /// 0-based line index.
    line: usize,
    kind: TokKind,
}

fn tokenize(lines: &[ScannedLine]) -> Vec<Tok> {
    let mut toks = Vec::new();
    for (line, scanned) in lines.iter().enumerate() {
        let mut ident = String::new();
        for ch in scanned.code.chars() {
            if ch.is_alphanumeric() || ch == '_' {
                ident.push(ch);
            } else {
                if !ident.is_empty() {
                    toks.push(Tok {
                        line,
                        kind: TokKind::Ident(std::mem::take(&mut ident)),
                    });
                }
                if !ch.is_whitespace() {
                    toks.push(Tok {
                        line,
                        kind: TokKind::Punct(ch),
                    });
                }
            }
        }
        if !ident.is_empty() {
            toks.push(Tok {
                line,
                kind: TokKind::Ident(ident),
            });
        }
    }
    toks
}

fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s),
        _ => None,
    }
}

fn punct_at(toks: &[Tok], i: usize) -> Option<char> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Punct(c)) => Some(*c),
        _ => None,
    }
}

const NUMERIC_TYPES: [&str; 14] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// Run every applicable rule over one file and return its violations,
/// ordered by line.
pub fn check(ctx: &FileCtx, source: &str) -> Vec<Violation> {
    let lines = scan(source);
    let in_test = test_regions(&lines);
    let toks = tokenize(&lines);
    let mut out = Vec::new();

    let lib = ctx.kind == FileKind::Lib;
    let l1 = lib;
    let l2 = lib && (ctx.in_crate("id") || ctx.in_crate("core"));
    let l4 = lib && (ctx.in_crate("id") || ctx.in_crate("freq") || ctx.in_crate("core"));
    let l5 = lib;

    for (i, tok) in toks.iter().enumerate() {
        let TokKind::Ident(name) = &tok.kind else {
            continue;
        };
        let tested = in_test.get(tok.line).copied().unwrap_or(false);

        // L3 applies everywhere, test regions included.
        if name == "unsafe" {
            out.push(Violation {
                line: tok.line + 1,
                rule: Rule::L3,
                message: "`unsafe` is forbidden throughout the workspace (rule L3)".to_owned(),
            });
        }
        if tested {
            continue;
        }

        if l1 {
            let method_call = punct_at(&toks, i.wrapping_sub(1)) == Some('.')
                && punct_at(&toks, i + 1) == Some('(');
            let bang_macro = punct_at(&toks, i + 1) == Some('!');
            if (name == "unwrap" || name == "expect") && method_call {
                out.push(Violation {
                    line: tok.line + 1,
                    rule: Rule::L1,
                    message: format!(
                        "`.{name}()` in library code — return an error or \
                         concentrate the proof in an allowlisted helper (rule L1)"
                    ),
                });
            } else if (name == "panic" || name == "todo" || name == "unimplemented") && bang_macro {
                out.push(Violation {
                    line: tok.line + 1,
                    rule: Rule::L1,
                    message: format!("`{name}!` in library code (rule L1)"),
                });
            }
        }

        if l2 && name == "as" {
            if let Some(target) = ident_at(&toks, i + 1) {
                if NUMERIC_TYPES.contains(&target) {
                    out.push(Violation {
                        line: tok.line + 1,
                        rule: Rule::L2,
                        message: format!(
                            "bare `as {target}` cast — use `From`/`TryFrom`/`wrapping_*` \
                             (rule L2)"
                        ),
                    });
                }
            }
        }

        if l5 && (name == "Instant" || name == "SystemTime") {
            out.push(Violation {
                line: tok.line + 1,
                rule: Rule::L5,
                message: format!(
                    "`{name}` in deterministic code — wall-clock reads break \
                     reproducible simulation (rule L5)"
                ),
            });
        }

        if l4 && name == "pub" {
            if let Some(v) = check_pub_item(&lines, &toks, i) {
                out.push(v);
            }
        }
    }

    out.sort_by_key(|v| (v.line, v.rule));
    out
}

/// L4: a `pub fn` / `pub struct` (ignoring `pub(...)` restricted
/// visibility and skipping `const`/`async`/`extern` modifiers) must be
/// preceded by a doc comment, looking backwards over attribute and blank
/// lines.
fn check_pub_item(lines: &[ScannedLine], toks: &[Tok], pub_idx: usize) -> Option<Violation> {
    let mut j = pub_idx + 1;
    if punct_at(toks, j) == Some('(') {
        return None; // pub(crate) and friends are not public API
    }
    while matches!(ident_at(toks, j), Some("const" | "async" | "extern")) {
        j += 1;
    }
    let item = ident_at(toks, j)?;
    if item != "fn" && item != "struct" {
        return None;
    }
    let name = ident_at(toks, j + 1).unwrap_or("?").to_owned();
    let line = toks[pub_idx].line;
    let mut back = line;
    while back > 0 {
        back -= 1;
        let prev = &lines[back];
        if prev.doc {
            return None;
        }
        let trimmed = prev.code.trim_start();
        let skippable = trimmed.is_empty() || trimmed.starts_with("#[") || trimmed.starts_with(']');
        if !skippable {
            break;
        }
    }
    Some(Violation {
        line: line + 1,
        rule: Rule::L4,
        message: format!("missing doc comment on `pub {item} {name}` (rule L4)"),
    })
}
