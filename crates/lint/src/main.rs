//! Command-line entry point: `peercache-lint [ROOT]`.
//!
//! Lints every `.rs` file under ROOT (default: the current directory,
//! which `cargo run -p peercache-lint` sets to the workspace root)
//! against `lint.allow`, printing `file:line: RULE: message` diagnostics.
//! When a `lint.roots` file sits at ROOT, the interprocedural
//! reachability rules L9–L11 and the reuse-cycle dataflow rules
//! L13/L14 run over the workspace call graph too; the draw-balance
//! rule L12 always runs over the deterministic crates.
//!
//! Flags:
//!
//! - `--root DIR` (or a bare DIR argument) — tree to lint.
//! - `--format text|sarif` — diagnostic format; `sarif` emits a SARIF
//!   2.1.0 document for GitHub code scanning.
//! - `--output PATH` — write the report there instead of stdout.
//! - `--explain RULE` — print one rule's rationale (with its paper
//!   citation) and exit.
//!
//! Exits 0 when clean, 1 on violations, 2 on environmental errors.

#![forbid(unsafe_code)]

use std::path::Path;
use std::process::ExitCode;

use peercache_lint::Rule;

enum Format {
    Text,
    Sarif,
}

fn main() -> ExitCode {
    let mut root = String::from(".");
    let mut format = Format::Text;
    let mut output: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = dir,
                None => {
                    eprintln!("peercache-lint: --root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("sarif") => format = Format::Sarif,
                _ => {
                    eprintln!("peercache-lint: --format requires `text` or `sarif`");
                    return ExitCode::from(2);
                }
            },
            "--output" => match args.next() {
                Some(path) => output = Some(path),
                None => {
                    eprintln!("peercache-lint: --output requires a path");
                    return ExitCode::from(2);
                }
            },
            "--explain" => {
                return match args.next().as_deref().and_then(Rule::parse) {
                    Some(rule) => {
                        println!("{}", rule.explain());
                        ExitCode::SUCCESS
                    }
                    None => {
                        eprintln!("peercache-lint: --explain requires a rule name (L1..L14)");
                        ExitCode::from(2)
                    }
                };
            }
            "--help" | "-h" => {
                println!(
                    "usage: peercache-lint [--root DIR] [--format text|sarif] \
                     [--output PATH] [--explain RULE]"
                );
                return ExitCode::SUCCESS;
            }
            other => root = other.to_owned(),
        }
    }

    match peercache_lint::lint_root(Path::new(&root)) {
        Ok(report) => {
            let rendered = match format {
                Format::Text => {
                    let mut text = String::new();
                    for line in &report.diagnostics {
                        text.push_str(line);
                        text.push('\n');
                    }
                    for note in &report.notes {
                        text.push_str(note);
                        text.push('\n');
                    }
                    text.push_str(&format!(
                        "peercache-lint: {} file(s), {} violation(s), {}\n",
                        report.files,
                        report.violations,
                        if report.ok() {
                            "all within lint.allow budgets"
                        } else {
                            "FAILED"
                        }
                    ));
                    text
                }
                Format::Sarif => peercache_lint::to_sarif(&report.findings),
            };
            match output {
                Some(path) => {
                    if let Err(err) = std::fs::write(&path, rendered) {
                        eprintln!("peercache-lint: cannot write {path}: {err}");
                        return ExitCode::from(2);
                    }
                    eprintln!(
                        "peercache-lint: wrote {} finding(s) to {path}",
                        report.findings.len()
                    );
                }
                None => print!("{rendered}"),
            }
            if report.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("peercache-lint: {err}");
            ExitCode::from(2)
        }
    }
}
