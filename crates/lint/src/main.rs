//! Command-line entry point: `peercache-lint [ROOT]`.
//!
//! Lints every `.rs` file under ROOT (default: the current directory,
//! which `cargo run -p peercache-lint` sets to the workspace root)
//! against `lint.allow`, printing `file:line: RULE: message` diagnostics.
//! Exits 0 when clean, 1 on violations, 2 on environmental errors.

#![forbid(unsafe_code)]

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = String::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = dir,
                None => {
                    eprintln!("peercache-lint: --root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: peercache-lint [--root DIR]");
                return ExitCode::SUCCESS;
            }
            other => root = other.to_owned(),
        }
    }

    match peercache_lint::lint_root(Path::new(&root)) {
        Ok(report) => {
            for line in &report.diagnostics {
                println!("{line}");
            }
            for note in &report.notes {
                println!("{note}");
            }
            println!(
                "peercache-lint: {} file(s), {} violation(s), {}",
                report.files,
                report.violations,
                if report.ok() {
                    "all within lint.allow budgets"
                } else {
                    "FAILED"
                }
            );
            if report.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("peercache-lint: {err}");
            ExitCode::from(2)
        }
    }
}
