//! # peercache-lint
//!
//! Workspace-local static analysis for the peercache repository: five
//! style rules (L1–L5) that keep the paper-reproduction code honest,
//! enforced by a comment- and string-aware scanner rather than a naive
//! grep. See [`rules`] for the rule table, [`scan`] for the scanner and
//! [`allow`] for the `lint.allow` budget format.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p peercache-lint
//! ```
//!
//! Exit status is non-zero when any violation exceeds its allowlist
//! budget.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod engine;
pub mod rules;
pub mod scan;

pub use allow::Allowlist;
pub use engine::{lint_root, Report};
pub use rules::{check, FileCtx, FileKind, Rule, Violation};
