//! # peercache-lint
//!
//! Workspace-local static analysis for the peercache repository:
//! fourteen rules (L1–L14) that keep the paper-reproduction code
//! honest, run as a four-pass semantic analyzer — pass 1 builds, per
//! file, a blanked token stream ([`scan`]), a brace-matched item tree
//! ([`items`]) and a workspace symbol table ([`symbols`]); pass 2
//! evaluates the per-file rules plus the workspace-level dead-API rule
//! L7; pass 3 builds an interprocedural call graph ([`callgraph`]) and
//! checks transitive reachability ([`reach`]) from the root sets
//! declared in `lint.roots` (rules L9–L11, with SARIF `codeFlows` call
//! chains); pass 4 builds intraprocedural control-flow graphs ([`cfg`])
//! and runs forward dataflow ([`dataflow`]) composed with the pass-3
//! call graph — RNG draw balance (L12) and scratch-buffer hygiene
//! (L13/L14). See [`rules`] for the rule table, [`allow`] for the
//! `lint.allow` budget format and [`sarif`] for the hand-rolled SARIF
//! 2.1.0 emitter.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p peercache-lint
//! cargo run -p peercache-lint -- --format sarif --output lint.sarif
//! cargo run -p peercache-lint -- --explain L6
//! ```
//!
//! Exit status is non-zero when any violation exceeds its allowlist
//! budget.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod engine;
pub mod items;
pub mod reach;
pub mod rules;
pub mod sarif;
pub mod scan;
pub mod symbols;

pub use allow::Allowlist;
pub use callgraph::{CallGraph, CallSite, FnNode};
pub use cfg::{build_cfg, fn_signature, Block, Cfg, DrawEffect, FieldAccess, FnSig, Op};
pub use dataflow::check_dataflow;
pub use engine::{lint_root, Finding, Report};
pub use reach::{check_reachability, parse_roots, RootSpec};
pub use rules::{check, FileCtx, FileKind, FlowStep, Rule, Violation, ALL_RULES};
pub use sarif::to_sarif;
