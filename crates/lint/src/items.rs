//! Pass 1 of the semantic analyzer: tokens and the per-file item tree.
//!
//! The scanner ([`crate::scan`]) blanks comments and literal interiors;
//! this module turns the surviving executable text into a flat token
//! stream and then into a brace-matched **item tree**: modules, `fn`s,
//! `impl` blocks, `struct`s, `enum`s, traits, type aliases, consts and
//! statics, each with its visibility, its attributes, its line span, and
//! whether it lives under `#[cfg(test)]`. The tree is what the
//! workspace-level rules consume — L7 (dead public API) walks it to
//! collect `pub` definitions, and the test-scoping of every rule can be
//! answered from it.
//!
//! The parser is deliberately a *lint-grade* Rust item grammar: it
//! understands the forms this workspace writes (and the tricky lexical
//! cases the scanner normalizes away — raw strings, nested comments,
//! `'a'`-vs-`'a`, `r#ident`), not every corner of the language. Bodies of
//! functions, structs and enums are skipped by brace matching; modules,
//! traits and `impl` blocks are recursed into so nested items keep their
//! scope.

use crate::scan::ScannedLine;

/// What a token is: a word or a single punctuation character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier, keyword or numeric-literal fragment. Raw
    /// identifiers (`r#type`) arrive as the bare name (`type`).
    Ident(String),
    /// One non-whitespace punctuation character.
    Punct(char),
}

/// One token with its 0-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// 0-based line index into the scanned file.
    pub line: usize,
    /// The token payload.
    pub kind: TokKind,
}

/// Tokenize blanked source lines into identifiers and punctuation.
///
/// Raw identifiers are folded: the `r#` prefix of `r#ident` is dropped so
/// downstream keyword matching sees the same name the compiler resolves
/// (`r#fn` stays distinct from the `fn` keyword only in real Rust; for
/// lint purposes the item parser never treats a *folded* name as a
/// keyword because the `#` is consumed together with the `r`).
pub fn tokenize(lines: &[ScannedLine]) -> Vec<Tok> {
    let mut toks: Vec<Tok> = Vec::new();
    for (line, scanned) in lines.iter().enumerate() {
        let mut ident = String::new();
        for ch in scanned.code.chars() {
            if ch.is_alphanumeric() || ch == '_' {
                ident.push(ch);
            } else {
                if !ident.is_empty() {
                    toks.push(Tok {
                        line,
                        kind: TokKind::Ident(std::mem::take(&mut ident)),
                    });
                }
                if ch == '#' {
                    // Fold `r#ident`: drop the just-pushed `r` and the
                    // `#`, letting the following ident stand alone.
                    let prev_is_raw_marker = matches!(
                        toks.last(),
                        Some(Tok { kind: TokKind::Ident(p), line: l }) if p == "r" && *l == line
                    );
                    if prev_is_raw_marker {
                        toks.pop();
                        continue;
                    }
                }
                if !ch.is_whitespace() {
                    toks.push(Tok {
                        line,
                        kind: TokKind::Punct(ch),
                    });
                }
            }
        }
        if !ident.is_empty() {
            toks.push(Tok {
                line,
                kind: TokKind::Ident(ident),
            });
        }
    }
    toks
}

/// The identifier at token index `i`, if any.
pub(crate) fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s),
        _ => None,
    }
}

/// The punctuation character at token index `i`, if any.
pub(crate) fn punct_at(toks: &[Tok], i: usize) -> Option<char> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// The kind of a parsed item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name { … }` or `mod name;`.
    Module,
    /// A free function or method.
    Fn,
    /// A struct (unit, tuple or braced).
    Struct,
    /// An enum.
    Enum,
    /// A trait definition.
    Trait,
    /// An `impl` block (inherent or trait); `name` is the self type.
    Impl,
    /// A `type` alias.
    TypeAlias,
    /// A `const` item (free or associated).
    Const,
    /// A `static` item.
    Static,
}

impl ItemKind {
    /// The keyword-ish label used in diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            ItemKind::Module => "mod",
            ItemKind::Fn => "fn",
            ItemKind::Struct => "struct",
            ItemKind::Enum => "enum",
            ItemKind::Trait => "trait",
            ItemKind::Impl => "impl",
            ItemKind::TypeAlias => "type",
            ItemKind::Const => "const",
            ItemKind::Static => "static",
        }
    }
}

/// Item visibility, as far as reachability analysis needs it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// No `pub`.
    Private,
    /// `pub(crate)`, `pub(super)`, `pub(in …)` — not workspace API.
    Restricted,
    /// Plain `pub`.
    Public,
}

/// One node of the item tree.
#[derive(Debug, Clone)]
pub struct Item {
    /// The item kind.
    pub kind: ItemKind,
    /// The declared name (for `impl` blocks, the self type's last path
    /// segment).
    pub name: String,
    /// Visibility as written.
    pub vis: Visibility,
    /// 1-based line of the declaring keyword.
    pub line: usize,
    /// 1-based line of the item's closing brace / semicolon.
    pub end_line: usize,
    /// Attribute texts (`#[…]` interiors, idents and puncts flattened).
    pub attrs: Vec<String>,
    /// True when the item or an enclosing scope is `#[cfg(test)]`-gated.
    pub cfg_test: bool,
    /// Nested items (modules, traits and `impl` blocks recurse).
    pub children: Vec<Item>,
}

/// Parse the item tree of one file from its token stream.
pub fn parse_items(toks: &[Tok]) -> Vec<Item> {
    let mut i = 0usize;
    parse_level(toks, &mut i, false)
}

const ITEM_KEYWORDS: [&str; 9] = [
    "mod", "fn", "struct", "enum", "trait", "impl", "type", "const", "static",
];

/// Skip a balanced group opened by the punct at `*i` (`(`, `[`, `{` or a
/// generic `<`), leaving `*i` one past the closing token.
pub(crate) fn skip_balanced(toks: &[Tok], i: &mut usize, open: char, close: char) {
    let mut depth = 0usize;
    while *i < toks.len() {
        match punct_at(toks, *i) {
            Some(c) if c == open => depth += 1,
            Some(c) if c == close => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    *i += 1;
                    return;
                }
            }
            _ => {}
        }
        *i += 1;
    }
}

/// Consume an attribute starting at the `#`; returns its flattened text.
fn consume_attr(toks: &[Tok], i: &mut usize) -> String {
    let mut text = String::new();
    *i += 1; // '#'
    if punct_at(toks, *i) == Some('!') {
        *i += 1;
    }
    if punct_at(toks, *i) != Some('[') {
        return text;
    }
    let mut depth = 0usize;
    while *i < toks.len() {
        match &toks[*i].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    *i += 1;
                    return text;
                }
            }
            TokKind::Ident(s) => {
                if !text.is_empty() {
                    text.push(' ');
                }
                text.push_str(s);
            }
            TokKind::Punct(c) => text.push(*c),
        }
        *i += 1;
    }
    text
}

fn attr_is_cfg_test(text: &str) -> bool {
    text.contains("cfg") && text.contains("test")
}

/// Parse items until the matching `}` of the enclosing level (consumed)
/// or the end of the stream.
fn parse_level(toks: &[Tok], i: &mut usize, in_test: bool) -> Vec<Item> {
    let mut items = Vec::new();
    let mut attrs: Vec<String> = Vec::new();
    let mut cfg_test_attr = false;
    let mut vis = Visibility::Private;

    while *i < toks.len() {
        match &toks[*i].kind {
            TokKind::Punct('#') => {
                let text = consume_attr(toks, i);
                if attr_is_cfg_test(&text) {
                    cfg_test_attr = true;
                }
                attrs.push(text);
            }
            TokKind::Punct('}') => {
                *i += 1;
                return items;
            }
            TokKind::Punct('{') => {
                // A stray body (macro invocation, expression position):
                // skip it wholesale.
                skip_balanced(toks, i, '{', '}');
                attrs.clear();
                cfg_test_attr = false;
                vis = Visibility::Private;
            }
            TokKind::Punct(_) => {
                if punct_at(toks, *i) == Some(';') {
                    attrs.clear();
                    cfg_test_attr = false;
                    vis = Visibility::Private;
                }
                *i += 1;
            }
            TokKind::Ident(word) => {
                if word == "pub" {
                    *i += 1;
                    if punct_at(toks, *i) == Some('(') {
                        skip_balanced(toks, i, '(', ')');
                        vis = Visibility::Restricted;
                    } else {
                        vis = Visibility::Public;
                    }
                } else if word == "const" && ident_at(toks, *i + 1) == Some("fn") {
                    // `const fn` — the modifier, not a const item.
                    *i += 1;
                } else if word == "async" || word == "extern" || word == "default" {
                    *i += 1;
                } else if word == "use" || word == "macro_rules" {
                    // Skip to the terminating `;` (or the macro body).
                    while *i < toks.len() {
                        match punct_at(toks, *i) {
                            Some(';') => {
                                *i += 1;
                                break;
                            }
                            Some('{') => {
                                skip_balanced(toks, i, '{', '}');
                                break;
                            }
                            _ => *i += 1,
                        }
                    }
                    attrs.clear();
                    cfg_test_attr = false;
                    vis = Visibility::Private;
                } else if ITEM_KEYWORDS.contains(&word.as_str()) {
                    let cfg_test = in_test || cfg_test_attr;
                    let item = parse_item(toks, i, std::mem::take(&mut attrs), vis, cfg_test);
                    if let Some(item) = item {
                        items.push(item);
                    }
                    cfg_test_attr = false;
                    vis = Visibility::Private;
                } else {
                    *i += 1;
                }
            }
        }
    }
    items
}

/// Parse one item whose keyword is at `*i`.
fn parse_item(
    toks: &[Tok],
    i: &mut usize,
    attrs: Vec<String>,
    vis: Visibility,
    cfg_test: bool,
) -> Option<Item> {
    let kw_line = toks[*i].line;
    let kind = match ident_at(toks, *i)? {
        "mod" => ItemKind::Module,
        "fn" => ItemKind::Fn,
        "struct" => ItemKind::Struct,
        "enum" => ItemKind::Enum,
        "trait" => ItemKind::Trait,
        "impl" => ItemKind::Impl,
        "type" => ItemKind::TypeAlias,
        "const" => ItemKind::Const,
        "static" => ItemKind::Static,
        _ => return None,
    };
    *i += 1;
    let name = if kind == ItemKind::Impl {
        impl_self_type(toks, i)
    } else {
        // `static mut` (forbidden by L3 anyway) and `const _`:
        while matches!(ident_at(toks, *i), Some("mut")) {
            *i += 1;
        }
        ident_at(toks, *i).map(str::to_owned).unwrap_or_default()
    };

    // Find the item body (`{`) or terminator (`;`), skipping over
    // parameter lists, generics, where clauses and tuple-struct fields.
    let mut end_line = kw_line;
    let mut body = None;
    while *i < toks.len() {
        end_line = toks[*i].line;
        match punct_at(toks, *i) {
            Some(';') => {
                *i += 1;
                break;
            }
            Some('{') => {
                body = Some(*i);
                break;
            }
            Some('(') => skip_balanced(toks, i, '(', ')'),
            Some('[') => skip_balanced(toks, i, '[', ']'),
            Some('<') => skip_balanced(toks, i, '<', '>'),
            _ => *i += 1,
        }
    }

    let mut children = Vec::new();
    if let Some(open) = body {
        *i = open + 1;
        if matches!(kind, ItemKind::Module | ItemKind::Trait | ItemKind::Impl) {
            children = parse_level(toks, i, cfg_test);
            end_line = toks.get(i.saturating_sub(1)).map_or(end_line, |t| t.line);
        } else {
            *i = open;
            skip_balanced(toks, i, '{', '}');
            end_line = toks.get(i.saturating_sub(1)).map_or(end_line, |t| t.line);
        }
    }

    Some(Item {
        kind,
        name,
        vis,
        line: kw_line + 1,
        end_line: end_line + 1,
        attrs,
        cfg_test,
        children,
    })
}

/// The self-type name of an `impl` header: the last path segment before
/// the body, preferring the segment after `for` when present
/// (`impl Trait for Type`).
fn impl_self_type(toks: &[Tok], i: &mut usize) -> String {
    if punct_at(toks, *i) == Some('<') {
        skip_balanced(toks, i, '<', '>');
    }
    let mut last = String::new();
    let mut j = *i;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('{') | TokKind::Punct(';') => break,
            TokKind::Punct('<') => skip_balanced(toks, &mut j, '<', '>'),
            TokKind::Ident(s) if s == "for" => {
                last.clear();
                j += 1;
            }
            TokKind::Ident(s) if s == "where" => break,
            TokKind::Ident(s) => {
                last = s.clone();
                j += 1;
            }
            _ => j += 1,
        }
    }
    *i = j;
    last
}

/// Depth-first iteration over an item tree (the items themselves, then
/// their children).
pub fn walk_items<'a>(items: &'a [Item], visit: &mut impl FnMut(&'a Item)) {
    for item in items {
        visit(item);
        walk_items(&item.children, visit);
    }
}
