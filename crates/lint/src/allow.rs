//! The checked-in allowlist (`lint.allow` at the workspace root).
//!
//! Format: one entry per line, `RULE path count`, e.g.
//!
//! ```text
//! # expects proving memory-bounded index conversions
//! L1 crates/core/src/cast.rs 4
//! ```
//!
//! Blank lines and `#` comments are ignored. Semantics: a file may carry
//! at most `count` violations of `RULE`. *More* than `count` is a hard
//! failure (the new violation must be fixed or the entry consciously
//! raised); *fewer* is reported as an informational note so stale
//! entries get tightened rather than silently masking regressions.

use std::collections::BTreeMap;

use crate::rules::Rule;

/// Parsed allowlist: budgets per (rule, workspace-relative path).
#[derive(Debug, Default, Clone)]
pub struct Allowlist {
    entries: BTreeMap<(Rule, String), usize>,
}

impl Allowlist {
    /// Parse `lint.allow` content. Returns `Err` with a line-numbered
    /// message on malformed entries.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = BTreeMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let entry = (|| {
                let rule = Rule::parse(parts.next()?)?;
                let path = parts.next()?.to_owned();
                let count: usize = parts.next()?.parse().ok()?;
                if parts.next().is_some() {
                    return None;
                }
                Some(((rule, path), count))
            })();
            match entry {
                Some((key, count)) => {
                    if entries.insert(key.clone(), count).is_some() {
                        return Err(format!(
                            "lint.allow:{}: duplicate entry for {} {}",
                            idx + 1,
                            key.0.name(),
                            key.1
                        ));
                    }
                }
                None => {
                    return Err(format!(
                        "lint.allow:{}: expected `RULE path count`, got `{raw}`",
                        idx + 1
                    ));
                }
            }
        }
        Ok(Allowlist { entries })
    }

    /// The budget for (rule, path); zero when absent.
    pub fn budget(&self, rule: Rule, path: &str) -> usize {
        self.entries
            .get(&(rule, path.to_owned()))
            .copied()
            .unwrap_or(0)
    }

    /// All entries, for stale-entry reporting.
    pub fn entries(&self) -> impl Iterator<Item = (Rule, &str, usize)> {
        self.entries
            .iter()
            .map(|((rule, path), count)| (*rule, path.as_str(), *count))
    }
}
