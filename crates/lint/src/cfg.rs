//! Pass 4, stage 1: intraprocedural control-flow graphs over the pass-1
//! token streams.
//!
//! For one function body this module builds a [`Cfg`] of basic blocks and
//! edges by lint-grade recursive descent: `if`/`else if`/`else` chains
//! and `match` arms branch and re-join, `loop`/`while`/`for` introduce a
//! header block with a back edge (labeled `break`/`continue` resolve
//! through a loop stack, `break`-with-value carries its operand effects),
//! early `return` and the `?` operator edge to a dedicated exit block,
//! and `let … else` diverges. Each block holds the [`Op`] effects the
//! dataflow rules L12–L14 interpret: RNG draws on the function's RNG
//! parameters, calls forwarding an RNG parameter (labelled exactly like
//! the pass-3 call sites, so [`crate::dataflow`] can look their resolved
//! targets up in the [`crate::callgraph`]), and reads/clears/grows of
//! scratch-receiver fields.
//!
//! Macro invocations and closures whose tokens mention an RNG parameter
//! degrade to an *unknown* draw — never a false exact count — and a
//! `clear()` inside a closure is demoted to a no-op (the closure may run
//! zero times), while reads and grows inside closures still count. Both
//! degradations, and the other deliberate approximations, are documented
//! in DESIGN.md ("Dataflow pass: CFG, draw-balance, and buffer
//! hygiene").

use std::collections::BTreeSet;

use crate::callgraph::FnNode;
use crate::items::{ident_at, punct_at, skip_balanced, Tok, TokKind};

/// How many RNG draws one effect consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrawEffect {
    /// A statically known number of draw calls.
    Exact(u32),
    /// Data-dependent consumption (`shuffle`, `fill_bytes`, macros,
    /// closures) — the lattice absorbs it silently.
    Unknown,
}

/// How an operation touches one scratch-receiver field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldAccess {
    /// Whole-buffer (re)initialization: `clear`, `truncate`, `fill`,
    /// `resize`, `copy_from_slice`, `clone_from`, or direct assignment.
    Clear,
    /// Length growth without initialization: `push`, `extend`, `insert`,
    /// `append`, `extend_from_slice`, `push_back`.
    Grow,
    /// Any other use of the field's contents.
    Read,
    /// `recv.field.method(…)` with a method outside the known sets; the
    /// dataflow pass treats workspace-resolved targets as delegated
    /// (the callee is analyzed against its own receiver) and opaque
    /// targets as reads.
    Call {
        /// The trailing method name, without the leading dot.
        method: String,
    },
}

/// One effect-bearing operation inside a basic block, in source order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// A direct draw on an RNG parameter (`rng.gen()`, `rng.next_u64()`).
    Draw {
        /// 1-based source line.
        line: usize,
        /// The drawn method, for diagnostics (`rng.gen`).
        label: String,
        /// Statically known draw count or `Unknown`.
        count: DrawEffect,
    },
    /// A call expression whose top-level arguments include an RNG
    /// parameter; `label` matches the pass-3 call-site label so the
    /// dataflow pass can resolve callee draw summaries.
    RngCall {
        /// 1-based source line.
        line: usize,
        /// Pass-3 style label (`helper`, `.method`, `Type::method`).
        label: String,
    },
    /// A method call on the scratch receiver itself (`self.helper(…)`),
    /// spliced with the callee's per-field summary bottom-up.
    ScratchCall {
        /// 1-based source line.
        line: usize,
        /// Pass-3 style label (`.helper`).
        label: String,
    },
    /// A direct operation on `recv.field`.
    Field {
        /// 1-based source line.
        line: usize,
        /// The first-level field name after the receiver.
        field: String,
        /// How the operation touches the field.
        access: FieldAccess,
    },
    /// A macro invocation or closure mentioning an RNG parameter:
    /// unknown draw consumption, never a false exact count.
    OpaqueDraw {
        /// 1-based source line.
        line: usize,
        /// What degraded (`macro helper!`, `closure`), for diagnostics.
        what: String,
    },
}

impl Op {
    /// The op's 1-based source line.
    pub fn line(&self) -> usize {
        match self {
            Op::Draw { line, .. }
            | Op::RngCall { line, .. }
            | Op::ScratchCall { line, .. }
            | Op::Field { line, .. }
            | Op::OpaqueDraw { line, .. } => *line,
        }
    }
}

/// One basic block: its effects and its successor edges.
#[derive(Debug, Default)]
pub struct Block {
    /// Effects in source order.
    pub ops: Vec<Op>,
    /// Successor block indices.
    pub succs: Vec<usize>,
    /// True for loop headers: the dataflow join widens silently here
    /// (iteration-dependent totals are not branch divergence).
    pub loop_head: bool,
    /// Representative 1-based source line (where the block opens).
    pub line: usize,
}

/// The control-flow graph of one function body.
#[derive(Debug)]
pub struct Cfg {
    /// All blocks; indices are stable.
    pub blocks: Vec<Block>,
    /// The entry block (holds the first straight-line effects).
    pub entry: usize,
    /// The dedicated exit block every `return`, `?` and fall-through
    /// edges into. It holds no ops.
    pub exit: usize,
}

impl Cfg {
    /// Predecessor lists, derived from [`Block::succs`].
    pub fn preds(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (b, block) in self.blocks.iter().enumerate() {
            for &s in &block.succs {
                preds[s].push(b);
            }
        }
        preds
    }
}

/// The parts of a function signature the dataflow rules consume.
#[derive(Debug, Clone)]
pub struct FnSig {
    /// Parameter names bound to an RNG type (`&mut R` with `R: Rng`,
    /// `&mut impl Rng`, `&mut StdRng`, …). Includes none or several.
    pub rng_params: BTreeSet<String>,
    /// Scratch receivers: `self` when the self type names a workspace or
    /// scratch struct, plus parameters of such types.
    pub scratch_params: BTreeSet<String>,
    /// Token range of the body interior (one past `{` .. the `}`).
    pub body: (usize, usize),
}

/// Methods that consume exactly one vendored-RNG draw per call.
const DRAW_ONE: [&str; 5] = ["gen", "gen_range", "gen_bool", "next_u64", "next_u32"];

/// Methods on an RNG that consume no draws.
const DRAW_ZERO: [&str; 1] = ["clone"];

/// Field methods that (re)initialize the buffer before reuse.
const CLEAR_METHODS: [&str; 7] = [
    "clear",
    "truncate",
    "fill",
    "resize",
    "copy_from_slice",
    "clone_from",
    "rebuild",
];

/// Field methods that grow the buffer without initializing it.
const GROW_METHODS: [&str; 6] = [
    "push",
    "extend",
    "extend_from_slice",
    "insert",
    "append",
    "push_back",
];

/// Field methods that inspect shape only, touching no contents.
const SHAPE_METHODS: [&str; 4] = ["len", "is_empty", "capacity", "is_full"];

/// Locate `fn_name`'s declaration token and parse its signature: RNG
/// parameters, scratch receivers, and the body token range. `None` when
/// the declaration cannot be found or the function has no body.
pub fn fn_signature(toks: &[Tok], node: &FnNode) -> Option<FnSig> {
    // The declaring `fn` keyword sits on node.line (1-based).
    let mut fn_idx = None;
    for (i, tok) in toks.iter().enumerate() {
        if tok.line + 1 == node.line
            && matches!(&tok.kind, TokKind::Ident(s) if s == "fn")
            && ident_at(toks, i + 1) == Some(node.name.as_str())
        {
            fn_idx = Some(i);
            break;
        }
    }
    let mut i = fn_idx? + 2;

    // Generic parameter list: collect type params bounded by Rng/RngCore.
    let mut rng_types: BTreeSet<String> = BTreeSet::new();
    if punct_at(toks, i) == Some('<') {
        let open = i;
        skip_balanced(toks, &mut i, '<', '>');
        let mut j = open + 1;
        while j + 1 < i {
            if let (Some(param), Some(':')) = (
                ident_at(toks, j),
                punct_at(toks, j + 1).unwrap_or(' ').into(),
            ) {
                // Scan this param's bounds up to the next top-level comma.
                let mut depth = 0usize;
                let mut k = j + 2;
                let mut bound_hits = false;
                while k < i {
                    match punct_at(toks, k) {
                        Some('<') | Some('(') => depth += 1,
                        Some('>') | Some(')') => depth = depth.saturating_sub(1),
                        Some(',') if depth == 0 => break,
                        _ => {
                            if matches!(ident_at(toks, k), Some("Rng" | "RngCore")) {
                                bound_hits = true;
                            }
                        }
                    }
                    k += 1;
                }
                if bound_hits {
                    rng_types.insert(param.to_owned());
                }
                j = k + 1;
            } else {
                j += 1;
            }
        }
    }

    if punct_at(toks, i) != Some('(') {
        return None;
    }
    let params_open = i;
    skip_balanced(toks, &mut i, '(', ')');
    let params_close = i - 1;

    let mut rng_params = BTreeSet::new();
    let mut scratch_params = BTreeSet::new();
    let scratch_self = node
        .self_ty
        .as_deref()
        .is_some_and(|ty| ty.contains("Workspace") || ty.contains("Scratch"));

    // Split the parameter list at top-level commas.
    let mut start = params_open + 1;
    let mut depth = 0usize;
    let mut k = start;
    while k <= params_close {
        let boundary = k == params_close || (depth == 0 && punct_at(toks, k) == Some(','));
        match punct_at(toks, k) {
            Some('(') | Some('[') | Some('<') => depth += 1,
            Some(')') | Some(']') | Some('>') => depth = depth.saturating_sub(1),
            _ => {}
        }
        if boundary {
            classify_param(
                toks,
                start,
                k,
                &rng_types,
                scratch_self,
                &mut rng_params,
                &mut scratch_params,
            );
            start = k + 1;
        }
        k += 1;
    }

    // Skip the return type and any where clause to the body `{`.
    while i < toks.len() {
        match punct_at(toks, i) {
            Some('{') => break,
            Some(';') => return None, // trait method signature, no body
            Some('<') => skip_balanced(toks, &mut i, '<', '>'),
            Some('(') => skip_balanced(toks, &mut i, '(', ')'),
            _ => i += 1,
        }
    }
    if i >= toks.len() {
        return None;
    }
    let open = i;
    skip_balanced(toks, &mut i, '{', '}');
    Some(FnSig {
        rng_params,
        scratch_params,
        body: (open + 1, i.saturating_sub(1)),
    })
}

/// Classify one parameter's token range `[start, end)` into the RNG /
/// scratch sets.
fn classify_param(
    toks: &[Tok],
    start: usize,
    end: usize,
    rng_types: &BTreeSet<String>,
    scratch_self: bool,
    rng_params: &mut BTreeSet<String>,
    scratch_params: &mut BTreeSet<String>,
) {
    // Find the pattern/type split: the first top-level `:` not part of a
    // `::` path.
    let mut colon = None;
    let mut depth = 0usize;
    for k in start..end {
        match punct_at(toks, k) {
            Some('(') | Some('[') | Some('<') => depth += 1,
            Some(')') | Some(']') | Some('>') => depth = depth.saturating_sub(1),
            Some(':')
                if depth == 0
                    && punct_at(toks, k + 1) != Some(':')
                    && punct_at(toks, k.wrapping_sub(1)) != Some(':') =>
            {
                colon = Some(k);
                break;
            }
            _ => {}
        }
    }
    let Some(colon) = colon else {
        // Receiver form: `self`, `&self`, `&mut self`.
        let has_self = (start..end).any(|k| ident_at(toks, k) == Some("self"));
        if has_self && scratch_self {
            scratch_params.insert("self".to_owned());
        }
        return;
    };
    // Pattern name: the last ident before the colon (`mut rng` → rng).
    let mut name = None;
    for k in (start..colon).rev() {
        if let Some(id) = ident_at(toks, k) {
            if id != "mut" {
                name = Some(id.to_owned());
                break;
            }
        }
    }
    let Some(name) = name else { return };
    // Type idents after the colon.
    let mut is_rng = false;
    let mut is_scratch = false;
    for k in colon + 1..end {
        if let Some(id) = ident_at(toks, k) {
            if rng_types.contains(id) || id == "Rng" || id == "RngCore" || id.ends_with("Rng") {
                is_rng = true;
            }
            if id.contains("Workspace") || id.contains("Scratch") {
                is_scratch = true;
            }
        }
    }
    if is_rng {
        rng_params.insert(name.clone());
    }
    if is_scratch {
        scratch_params.insert(name);
    }
}

/// Build the control-flow graph of one function body.
pub fn build_cfg(toks: &[Tok], sig: &FnSig) -> Cfg {
    let (body_start, body_end) = sig.body;
    let start_line = toks.get(body_start).map_or(1, |t| t.line + 1);
    let mut b = Builder {
        toks,
        sig,
        blocks: vec![Block {
            line: start_line,
            ..Block::default()
        }],
        cur: 0,
        exit: usize::MAX,
        loops: Vec::new(),
        dead: false,
        end: body_end,
    };
    let exit_line = toks.get(body_end).map_or(start_line, |t| t.line + 1);
    b.blocks.push(Block {
        line: exit_line,
        ..Block::default()
    });
    b.exit = 1;
    let mut i = body_start;
    b.parse(&mut i, Until::End);
    if !b.dead {
        let cur = b.cur;
        let exit = b.exit;
        b.edge(cur, exit);
    }
    Cfg {
        blocks: b.blocks,
        entry: 0,
        exit: 1,
    }
}

/// How far one `parse` invocation runs.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Until {
    /// To the builder's body end.
    End,
    /// To (and consuming) the `}` closing the current level.
    CloseBrace,
    /// To (not consuming) the first of these puncts at depth 0.
    StopBefore(&'static [char]),
}

struct Builder<'a> {
    toks: &'a [Tok],
    sig: &'a FnSig,
    blocks: Vec<Block>,
    cur: usize,
    exit: usize,
    /// Innermost-last: (label or empty, header block, after block).
    loops: Vec<(String, usize, usize)>,
    /// True when the current path has been terminated (break, continue,
    /// return); the next live statement opens an unreachable block.
    dead: bool,
    end: usize,
}

impl<'a> Builder<'a> {
    fn new_block(&mut self, line: usize) -> usize {
        self.blocks.push(Block {
            line,
            ..Block::default()
        });
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    fn line_at(&self, i: usize) -> usize {
        self.toks.get(i).map_or(1, |t| t.line + 1)
    }

    /// Revive the current path into a fresh unreachable block after a
    /// terminator, so post-terminator effects never pollute a live block.
    fn ensure_live(&mut self, line: usize) {
        if self.dead {
            self.cur = self.new_block(line);
            self.dead = false;
        }
    }

    fn emit(&mut self, op: Op) {
        self.ensure_live(op.line());
        self.blocks[self.cur].ops.push(op);
    }

    /// Parse statements/expressions until the terminator, building
    /// blocks and edges, emitting effects into the current block.
    fn parse(&mut self, i: &mut usize, until: Until) {
        let mut depth = 0usize;
        while *i < self.end.min(self.toks.len()) {
            if let Until::StopBefore(stops) = until {
                if depth == 0 {
                    if let Some(c) = punct_at(self.toks, *i) {
                        if stops.contains(&c) {
                            return;
                        }
                    }
                }
            }
            match &self.toks[*i].kind {
                TokKind::Punct('}') => {
                    match until {
                        Until::CloseBrace => {
                            *i += 1;
                            return;
                        }
                        _ => return, // unbalanced close: caller's level
                    }
                }
                TokKind::Punct('{') => {
                    // A nested plain block (or stray struct literal).
                    *i += 1;
                    self.parse(i, Until::CloseBrace);
                }
                TokKind::Punct('#') => {
                    // Attribute: skip its bracket group.
                    *i += 1;
                    if punct_at(self.toks, *i) == Some('!') {
                        *i += 1;
                    }
                    if punct_at(self.toks, *i) == Some('[') {
                        skip_balanced(self.toks, i, '[', ']');
                    }
                }
                TokKind::Punct('?') => {
                    // Try operator: an early edge to the exit block. A
                    // leading `?` in bounds (`?Sized`) follows `+` or `:`.
                    let prev = self.toks.get(i.wrapping_sub(1)).map(|t| &t.kind);
                    let try_pos = matches!(
                        prev,
                        Some(TokKind::Ident(_))
                            | Some(TokKind::Punct(')'))
                            | Some(TokKind::Punct(']'))
                            | Some(TokKind::Punct('}'))
                    );
                    if try_pos && !self.dead {
                        // Split the block: draws before the `?` flow to
                        // the exit, draws after it only down the happy
                        // path — collapsing them into one out-state
                        // would hide the early-exit divergence.
                        let cur = self.cur;
                        let exit = self.exit;
                        self.edge(cur, exit);
                        let line = self.line_at(*i);
                        let next = self.new_block(line);
                        self.edge(cur, next);
                        self.cur = next;
                    }
                    *i += 1;
                }
                TokKind::Punct('\'') => {
                    // `'label: loop/while/for`.
                    if let Some(label) = self.loop_label_at(*i) {
                        *i += 3; // ' label :
                        let kw = ident_at(self.toks, *i).unwrap_or("").to_owned();
                        self.handle_loop(i, &kw, Some(label));
                    } else {
                        *i += 1;
                    }
                }
                TokKind::Punct(c) => {
                    if let Until::StopBefore(_) = until {
                        match c {
                            '(' | '[' => depth += 1,
                            ')' | ']' => {
                                if depth == 0 {
                                    return; // caller's closer
                                }
                                depth -= 1;
                            }
                            _ => {}
                        }
                    }
                    if *c == '|' && self.try_closure(i) {
                        continue;
                    }
                    *i += 1;
                }
                TokKind::Ident(word) => match word.as_str() {
                    "if" => {
                        *i += 1;
                        self.handle_if(i);
                    }
                    "match" => {
                        *i += 1;
                        self.handle_match(i);
                    }
                    "loop" | "while" | "for" => {
                        let kw = word.clone();
                        self.handle_loop(i, &kw, None);
                    }
                    "break" => {
                        *i += 1;
                        self.handle_break_continue(i, true);
                    }
                    "continue" => {
                        *i += 1;
                        self.handle_break_continue(i, false);
                    }
                    "return" => {
                        *i += 1;
                        self.parse(i, Until::StopBefore(&[';', ',', ')', '}']));
                        if !self.dead {
                            let cur = self.cur;
                            let exit = self.exit;
                            self.edge(cur, exit);
                        }
                        self.dead = true;
                    }
                    "else" => {
                        // `let … else { diverging }`: the else body exits
                        // this path; the happy path continues.
                        *i += 1;
                        if punct_at(self.toks, *i) == Some('{') {
                            let saved_cur = self.cur;
                            let saved_dead = self.dead;
                            let eb = self.new_block(self.line_at(*i));
                            if !self.dead {
                                self.edge(saved_cur, eb);
                            }
                            self.cur = eb;
                            self.dead = false;
                            *i += 1;
                            self.parse(i, Until::CloseBrace);
                            // A well-formed let-else body diverges; if it
                            // did not, drop the path (lint-grade).
                            self.cur = saved_cur;
                            self.dead = saved_dead;
                        }
                    }
                    _ => {
                        if !self.effect_step(i) {
                            *i += 1;
                        }
                    }
                },
            }
        }
    }

    /// `'label :` followed by a loop keyword at token `i` (the quote)?
    fn loop_label_at(&self, i: usize) -> Option<String> {
        let label = ident_at(self.toks, i + 1)?;
        if punct_at(self.toks, i + 2) != Some(':') {
            return None;
        }
        match ident_at(self.toks, i + 3) {
            Some("loop" | "while" | "for") => Some(label.to_owned()),
            _ => None,
        }
    }

    /// `if cond { … } [else if …]* [else { … }]`; `*i` is past the `if`.
    fn handle_if(&mut self, i: &mut usize) {
        self.ensure_live(self.line_at(*i));
        let join = self.new_block(self.line_at(*i));
        loop {
            // Condition (effects into the current block).
            self.parse(i, Until::StopBefore(&['{']));
            let pre = self.cur;
            let pre_dead = self.dead;
            let then = self.new_block(self.line_at(*i));
            if !pre_dead {
                self.edge(pre, then);
            }
            self.cur = then;
            self.dead = false;
            if punct_at(self.toks, *i) == Some('{') {
                *i += 1;
                self.parse(i, Until::CloseBrace);
            }
            if !self.dead {
                let cur = self.cur;
                self.edge(cur, join);
            }
            self.cur = pre;
            self.dead = pre_dead;
            if ident_at(self.toks, *i) == Some("else") {
                *i += 1;
                if ident_at(self.toks, *i) == Some("if") {
                    *i += 1;
                    continue; // chain: next condition evaluated from pre
                }
                let eb = self.new_block(self.line_at(*i));
                if !pre_dead {
                    self.edge(pre, eb);
                }
                self.cur = eb;
                self.dead = false;
                if punct_at(self.toks, *i) == Some('{') {
                    *i += 1;
                    self.parse(i, Until::CloseBrace);
                }
                if !self.dead {
                    let cur = self.cur;
                    self.edge(cur, join);
                }
            } else if !pre_dead {
                // No else: the condition may fall through directly.
                self.edge(pre, join);
            }
            break;
        }
        self.cur = join;
        self.dead = false;
    }

    /// `match scrutinee { arms }`; `*i` is past the `match`.
    fn handle_match(&mut self, i: &mut usize) {
        self.ensure_live(self.line_at(*i));
        // Scrutinee effects into the current block.
        self.parse(i, Until::StopBefore(&['{']));
        let pre = self.cur;
        let pre_dead = self.dead;
        let join = self.new_block(self.line_at(*i));
        if punct_at(self.toks, *i) != Some('{') {
            self.cur = join;
            self.dead = pre_dead;
            if !pre_dead {
                self.edge(pre, join);
            }
            return;
        }
        *i += 1;
        while *i < self.end.min(self.toks.len()) {
            if punct_at(self.toks, *i) == Some('}') {
                *i += 1;
                break;
            }
            // One arm: pattern [+ guard] => body [,]
            let arm = self.new_block(self.line_at(*i));
            if !pre_dead {
                self.edge(pre, arm);
            }
            self.cur = arm;
            self.dead = false;
            // Pattern + guard, until `=>` at depth 0. Guard draws (for
            // L12) are emitted into the arm block via effect_step.
            let mut depth = 0usize;
            while *i < self.end.min(self.toks.len()) {
                match punct_at(self.toks, *i) {
                    Some('(') | Some('[') | Some('{') => {
                        depth += 1;
                        *i += 1;
                    }
                    Some(')') | Some(']') | Some('}') => {
                        depth = depth.saturating_sub(1);
                        *i += 1;
                    }
                    Some('=') if depth == 0 && punct_at(self.toks, *i + 1) == Some('>') => {
                        *i += 2;
                        break;
                    }
                    _ => {
                        if !self.effect_step(i) {
                            *i += 1;
                        }
                    }
                }
            }
            // Arm body.
            if punct_at(self.toks, *i) == Some('{') {
                *i += 1;
                self.parse(i, Until::CloseBrace);
            } else {
                self.parse(i, Until::StopBefore(&[',', '}']));
            }
            if punct_at(self.toks, *i) == Some(',') {
                *i += 1;
            }
            if !self.dead {
                let cur = self.cur;
                self.edge(cur, join);
            }
        }
        self.cur = join;
        self.dead = false;
    }

    /// `loop`/`while cond`/`for pat in iter` bodies; `*i` is at the
    /// keyword (labels already consumed by the caller).
    fn handle_loop(&mut self, i: &mut usize, kw: &str, label: Option<String>) {
        self.ensure_live(self.line_at(*i));
        *i += 1; // the keyword
        if kw == "for" {
            // Pattern until top-level `in`, then the iterator
            // expression (evaluated once, effects into the
            // pre-header block).
            let mut depth = 0usize;
            while *i < self.end.min(self.toks.len()) {
                match &self.toks[*i].kind {
                    TokKind::Punct('(' | '[') => {
                        depth += 1;
                        *i += 1;
                    }
                    TokKind::Punct(')' | ']') => {
                        depth = depth.saturating_sub(1);
                        *i += 1;
                    }
                    TokKind::Ident(s) if s == "in" && depth == 0 => {
                        *i += 1;
                        break;
                    }
                    _ => *i += 1,
                }
            }
            self.parse(i, Until::StopBefore(&['{']));
        }
        let pre = self.cur;
        let pre_dead = self.dead;
        let header = self.new_block(self.line_at(*i));
        self.blocks[header].loop_head = true;
        if !pre_dead {
            self.edge(pre, header);
        }
        let after = self.new_block(self.line_at(*i));
        if kw == "while" {
            // The condition re-evaluates each iteration: its effects
            // live in the header, which may also exit.
            self.cur = header;
            self.dead = false;
            self.parse(i, Until::StopBefore(&['{']));
            let cond_end = self.cur; // conditions build no blocks, but be safe
            self.edge(cond_end, after);
        } else if kw == "for" {
            self.edge(header, after);
        }
        let body = self.new_block(self.line_at(*i));
        self.edge(header, body);
        self.loops.push((label.unwrap_or_default(), header, after));
        self.cur = body;
        self.dead = false;
        if punct_at(self.toks, *i) == Some('{') {
            *i += 1;
            self.parse(i, Until::CloseBrace);
        }
        if !self.dead {
            let cur = self.cur;
            self.edge(cur, header); // back edge
        }
        self.loops.pop();
        self.cur = after;
        self.dead = false;
    }

    /// `break ['label] [value]` / `continue ['label]`; `*i` is past the
    /// keyword.
    fn handle_break_continue(&mut self, i: &mut usize, is_break: bool) {
        self.ensure_live(self.line_at(*i));
        let mut label = None;
        if punct_at(self.toks, *i) == Some('\'') {
            if let Some(name) = ident_at(self.toks, *i + 1) {
                label = Some(name.to_owned());
                *i += 2;
            }
        }
        if is_break {
            // Break-with-value: operand effects run before the jump.
            self.parse(i, Until::StopBefore(&[';', ',', ')', '}']));
        }
        let target = match &label {
            Some(name) => self
                .loops
                .iter()
                .rev()
                .find(|(l, _, _)| l == name)
                .map(|t| (t.1, t.2)),
            None => self.loops.last().map(|t| (t.1, t.2)),
        };
        let to = match target {
            Some((header, after)) => {
                if is_break {
                    after
                } else {
                    header
                }
            }
            None => self.exit, // break outside a loop: lint-grade degrade
        };
        if !self.dead {
            let cur = self.cur;
            self.edge(cur, to);
        }
        self.dead = true;
    }

    /// A closure literal starting at the `|` at `*i`? If so, consume the
    /// parameter list and body: RNG mentions degrade to an unknown draw,
    /// field clears are demoted to no-ops (the closure may run zero
    /// times) while reads and grows still count. Returns true when
    /// consumed.
    fn try_closure(&mut self, i: &mut usize) -> bool {
        // Closure position: after `(`, `,`, `=`, `{`, `;`, `:` or the
        // `move` keyword — a `|` after an ident or closer is bitwise-or.
        let prev = self.toks.get(i.wrapping_sub(1)).map(|t| &t.kind);
        let closure_pos = match prev {
            Some(TokKind::Punct('(' | ',' | '=' | '{' | ';' | ':' | '|')) => {
                // `||` empty-params is handled below; `a || b` has an
                // operand before the first `|`, caught by the ident arm.
                !matches!(
                    self.toks.get(i.wrapping_sub(2)).map(|t| &t.kind),
                    Some(TokKind::Ident(_)) | Some(TokKind::Punct(')' | ']'))
                ) || punct_at(self.toks, i.wrapping_sub(1)) != Some('|')
            }
            Some(TokKind::Ident(s)) => s == "move" || s == "return",
            None => true,
            _ => false,
        };
        if !closure_pos {
            return false;
        }
        let params_end;
        if punct_at(self.toks, *i + 1) == Some('|') {
            params_end = *i + 1; // `||`
        } else {
            // Scan for the closing `|` of the parameter list.
            let mut j = *i + 1;
            let mut found = None;
            while j < self.end.min(self.toks.len()) && j < *i + 64 {
                match punct_at(self.toks, j) {
                    Some('|') => {
                        found = Some(j);
                        break;
                    }
                    Some(';') | Some('{') | Some('}') => break,
                    _ => j += 1,
                }
            }
            match found {
                Some(j) => params_end = j,
                None => return false,
            }
        }
        let body_start = params_end + 1;
        let mut j = body_start;
        // Body extent: a braced block, or one expression up to a
        // top-level `,`, `)`, `;` or `}`.
        let body_end = if punct_at(self.toks, j) == Some('{') {
            skip_balanced(self.toks, &mut j, '{', '}');
            j
        } else {
            let mut depth = 0usize;
            loop {
                if j >= self.end.min(self.toks.len()) {
                    break;
                }
                match punct_at(self.toks, j) {
                    Some('(' | '[' | '{') => depth += 1,
                    Some(')' | ']' | '}') => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    Some(',' | ';') if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            j
        };
        // Effects inside the closure body.
        let line = self.line_at(*i);
        let mentions_rng = (body_start..body_end)
            .any(|k| ident_at(self.toks, k).is_some_and(|id| self.sig.rng_params.contains(id)));
        if mentions_rng {
            self.emit(Op::OpaqueDraw {
                line,
                what: "closure".to_owned(),
            });
        }
        // Field effects: scan the body with a demotion marker so clears
        // become no-ops.
        let mut k = body_start;
        while k < body_end {
            if !self.effect_step_demoted(&mut k) {
                k += 1;
            }
        }
        *i = body_end;
        true
    }

    /// Effect scan inside a closure: field clears demote to no-ops, RNG
    /// ops were already degraded by the caller.
    fn effect_step_demoted(&mut self, i: &mut usize) -> bool {
        let before = self.blocks[self.cur].ops.len();
        let consumed = self.scratch_chain_step(i);
        for op in self.blocks[self.cur].ops[before..].iter_mut() {
            if let Op::Field { access, .. } = op {
                if *access == FieldAccess::Clear {
                    *access = FieldAccess::Call {
                        method: "closure-clear".to_owned(),
                    };
                }
            }
        }
        consumed
    }

    /// One effect-bearing token: RNG draw chains, scratch-field chains,
    /// macro invocations, RNG-forwarding calls. Returns true when it
    /// consumed tokens (advancing `*i`).
    fn effect_step(&mut self, i: &mut usize) -> bool {
        let Some(name) = ident_at(self.toks, *i) else {
            return false;
        };
        let line = self.line_at(*i);

        // Macro invocation: `name!(…)` / `name![…]` / `name!{…}`.
        if punct_at(self.toks, *i + 1) == Some('!') {
            if let Some(open) = punct_at(self.toks, *i + 2) {
                let close = match open {
                    '(' => ')',
                    '[' => ']',
                    '{' => '}',
                    _ => ' ',
                };
                if close != ' ' {
                    let mut j = *i + 2;
                    let arg_start = j + 1;
                    skip_balanced(self.toks, &mut j, open, close);
                    let mentions_rng = (arg_start..j.saturating_sub(1)).any(|k| {
                        ident_at(self.toks, k).is_some_and(|id| self.sig.rng_params.contains(id))
                    });
                    if mentions_rng {
                        self.emit(Op::OpaqueDraw {
                            line,
                            what: format!("macro {name}!"),
                        });
                    }
                    *i = j;
                    return true;
                }
            }
        }

        // Direct draw: `rng.method(…)` (with optional turbofish).
        if self.sig.rng_params.contains(name) && punct_at(self.toks, *i + 1) == Some('.') {
            if let Some(method) = ident_at(self.toks, *i + 2) {
                let mut j = *i + 3;
                // `rng.gen::<u64>(…)`.
                if punct_at(self.toks, j) == Some(':') && punct_at(self.toks, j + 1) == Some(':') {
                    j += 2;
                    if punct_at(self.toks, j) == Some('<') {
                        skip_balanced(self.toks, &mut j, '<', '>');
                    }
                }
                if punct_at(self.toks, j) == Some('(') {
                    let count = if DRAW_ONE.contains(&method) {
                        DrawEffect::Exact(1)
                    } else if DRAW_ZERO.contains(&method) {
                        DrawEffect::Exact(0)
                    } else {
                        DrawEffect::Unknown
                    };
                    self.emit(Op::Draw {
                        line,
                        label: format!("{name}.{method}"),
                        count,
                    });
                    *i = j; // arguments are scanned normally
                    return true;
                }
            }
        }

        // Scratch-receiver chain: `recv.field…` / `recv.method(…)`.
        if self.sig.scratch_params.contains(name) {
            return self.scratch_chain_step(i);
        }

        // Call forms whose top-level arguments include an RNG param:
        // `helper(…, rng)`, `.method(rng)`, `Qual::method(…, rng)`.
        let next = punct_at(self.toks, *i + 1);
        if next == Some('(') && !is_keyword(name) {
            let label = if punct_at(self.toks, i.wrapping_sub(1)) == Some('.') {
                format!(".{name}")
            } else if punct_at(self.toks, i.wrapping_sub(1)) == Some(':')
                && punct_at(self.toks, i.wrapping_sub(2)) == Some(':')
            {
                match ident_at(self.toks, i.wrapping_sub(3)) {
                    Some(qual) => format!("{qual}::{name}"),
                    None => format!("::{name}"),
                }
            } else {
                name.to_owned()
            };
            if self.args_mention_rng(*i + 1) {
                self.emit(Op::RngCall { line, label });
            }
            *i += 1; // arguments are scanned normally
            return true;
        }
        false
    }

    /// Scan a `recv.…` chain starting at the receiver ident, emitting a
    /// field op (and, for method calls, an RNG-forwarding op when the
    /// arguments mention an RNG parameter). Returns true when consumed.
    fn scratch_chain_step(&mut self, i: &mut usize) -> bool {
        let Some(name) = ident_at(self.toks, *i) else {
            return false;
        };
        if !self.sig.scratch_params.contains(name) {
            return false;
        }
        if punct_at(self.toks, *i + 1) != Some('.') {
            *i += 1; // bare receiver mention (`&mut self` forward, …)
            return true;
        }
        let line = self.line_at(*i);
        // `& mut recv.…` — a mutable borrow of the chain?
        let mut_borrow = ident_at(self.toks, i.wrapping_sub(1)) == Some("mut")
            && punct_at(self.toks, i.wrapping_sub(2)) == Some('&');

        let first = match ident_at(self.toks, *i + 2) {
            Some(f) => f.to_owned(),
            None => {
                *i += 2; // `self.0` tuple access etc.: treat as opaque
                return true;
            }
        };
        // Method call directly on the receiver: `recv.helper(…)`.
        if punct_at(self.toks, *i + 3) == Some('(') {
            if self.args_mention_rng(*i + 3) {
                self.emit(Op::RngCall {
                    line,
                    label: format!(".{first}"),
                });
            }
            self.emit(Op::ScratchCall {
                line,
                label: format!(".{first}"),
            });
            *i += 3; // arguments are scanned normally
            return true;
        }
        // Field chain: walk `.seg` segments to the final method or bare
        // end. The first segment names the tracked field.
        let mut j = *i + 2; // at `first`
        let mut method: Option<String> = None;
        loop {
            let after_seg = j + 1;
            match punct_at(self.toks, after_seg) {
                Some('.') => {
                    if let Some(seg) = ident_at(self.toks, after_seg + 1) {
                        if punct_at(self.toks, after_seg + 2) == Some('(') {
                            method = Some(seg.to_owned());
                            j = after_seg + 1;
                            break;
                        }
                        j = after_seg + 1;
                        continue;
                    }
                    // `.0` tuple segment: step over.
                    j = after_seg + 1;
                    if ident_at(self.toks, j).is_none() {
                        break;
                    }
                    continue;
                }
                Some('[') => {
                    // Index expression: `recv.f[…]` — a write (`= v`) is
                    // neither a clear nor a read; anything else reads.
                    let mut k = after_seg;
                    skip_balanced(self.toks, &mut k, '[', ']');
                    let is_write = punct_at(self.toks, k) == Some('=')
                        && punct_at(self.toks, k + 1) != Some('=');
                    if !is_write {
                        self.emit(Op::Field {
                            line,
                            field: first,
                            access: FieldAccess::Read,
                        });
                    }
                    *i = k;
                    return true;
                }
                _ => break,
            }
        }
        if let Some(method) = method {
            // `recv.f[.g…].method(…)`.
            let call_paren = j + 1;
            if self.args_mention_rng(call_paren) {
                self.emit(Op::RngCall {
                    line,
                    label: format!(".{method}"),
                });
            }
            let access = if CLEAR_METHODS.contains(&method.as_str()) {
                FieldAccess::Clear
            } else if GROW_METHODS.contains(&method.as_str()) {
                FieldAccess::Grow
            } else if SHAPE_METHODS.contains(&method.as_str()) {
                // Shape queries touch no contents.
                *i = call_paren;
                return true;
            } else {
                FieldAccess::Call { method }
            };
            self.emit(Op::Field {
                line,
                field: first,
                access,
            });
            *i = call_paren; // arguments are scanned normally
            return true;
        }
        // Bare field use: assignment clears, a mutable borrow is assumed
        // to be initialized by its consumer (a documented
        // false-negative class), anything else reads.
        let after = punct_at(self.toks, j + 1);
        let assigned = after == Some('=') && punct_at(self.toks, j + 2) != Some('=');
        let access = if assigned || mut_borrow {
            FieldAccess::Clear
        } else {
            FieldAccess::Read
        };
        self.emit(Op::Field {
            line,
            field: first,
            access,
        });
        *i = j + 1;
        true
    }

    /// Do the top-level tokens of the argument group opening at `open`
    /// (a `(`) mention an RNG parameter?
    fn args_mention_rng(&self, open: usize) -> bool {
        if self.sig.rng_params.is_empty() {
            return false;
        }
        let mut depth = 0usize;
        let mut k = open;
        while k < self.toks.len() {
            match &self.toks[k].kind {
                TokKind::Punct('(' | '[' | '{') => depth += 1,
                TokKind::Punct(')' | ']' | '}') => {
                    depth -= usize::from(depth > 0);
                    if depth == 0 {
                        return false;
                    }
                }
                TokKind::Ident(s) if depth == 1 && self.sig.rng_params.contains(s) => {
                    return true;
                }
                _ => {}
            }
            k += 1;
        }
        false
    }
}

/// Keywords that legally precede a parenthesized expression (mirrors the
/// pass-3 call extraction).
fn is_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "break"
            | "in"
            | "move"
            | "yield"
            | "await"
            | "let"
            | "mut"
            | "ref"
    )
}
