//! Hand-rolled SARIF 2.1.0 emitter.
//!
//! The workspace's vendored-std-only policy means no serde derive
//! machinery here: the report is assembled by string building with
//! explicit JSON escaping. The emitted document carries one run with the
//! full L1–L14 rule metadata under `runs[0].tool.driver.rules` and one
//! `result` per finding, `level: "error"` for violations over their
//! `lint.allow` budget and `level: "note"` for allowlisted ones — so
//! GitHub code scanning annotates regressions loudly while still
//! surfacing the tracked debt. Reachability findings (L9–L11) carry
//! their root-to-construct call chain, and dataflow findings (L12–L14)
//! their intraprocedural path plus call chain, as a `codeFlows` thread
//! flow, which code scanning renders as a step-through path.

use crate::engine::Finding;
use crate::rules::ALL_RULES;

/// The SARIF spec version this emitter targets.
pub const SARIF_VERSION: &str = "2.1.0";

/// Escape a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the findings of one lint run as a SARIF 2.1.0 document.
pub fn to_sarif(findings: &[Finding]) -> String {
    let mut out = String::with_capacity(4096 + findings.len() * 256);
    out.push_str("{\n");
    out.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/\
         Schemata/sarif-schema-2.1.0.json\",\n",
    );
    out.push_str(&format!("  \"version\": \"{SARIF_VERSION}\",\n"));
    out.push_str("  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"peercache-lint\",\n");
    out.push_str(&format!(
        "          \"version\": \"{}\",\n",
        escape(env!("CARGO_PKG_VERSION"))
    ));
    out.push_str(
        "          \"informationUri\": \
         \"https://example.invalid/peercache/crates/lint\",\n",
    );
    out.push_str("          \"rules\": [\n");
    for (idx, rule) in ALL_RULES.iter().enumerate() {
        out.push_str("            {\n");
        out.push_str(&format!("              \"id\": \"{}\",\n", rule.name()));
        out.push_str(&format!(
            "              \"shortDescription\": {{ \"text\": \"{}\" }},\n",
            escape(rule.short_desc())
        ));
        out.push_str(&format!(
            "              \"fullDescription\": {{ \"text\": \"{}\" }},\n",
            escape(rule.explain())
        ));
        out.push_str(&format!(
            "              \"help\": {{ \"text\": \"{}\" }}\n",
            escape(rule.short_desc())
        ));
        out.push_str("            }");
        if idx + 1 < ALL_RULES.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (idx, finding) in findings.iter().enumerate() {
        let rule_index = ALL_RULES
            .iter()
            .position(|r| *r == finding.rule)
            .unwrap_or_default();
        let level = if finding.over_budget { "error" } else { "note" };
        out.push_str("        {\n");
        out.push_str(&format!(
            "          \"ruleId\": \"{}\",\n",
            finding.rule.name()
        ));
        out.push_str(&format!("          \"ruleIndex\": {rule_index},\n"));
        out.push_str(&format!("          \"level\": \"{level}\",\n"));
        out.push_str(&format!(
            "          \"message\": {{ \"text\": \"{}\" }},\n",
            escape(&finding.message)
        ));
        if !finding.flow.is_empty() {
            out.push_str(
                "          \"codeFlows\": [\n            {\n              \
                 \"threadFlows\": [\n                {\n                  \
                 \"locations\": [\n",
            );
            for (step_idx, step) in finding.flow.iter().enumerate() {
                out.push_str("                    {\n");
                out.push_str("                      \"location\": {\n");
                out.push_str("                        \"physicalLocation\": {\n");
                out.push_str(&format!(
                    "                          \"artifactLocation\": {{ \"uri\": \"{}\" }},\n",
                    escape(&step.path)
                ));
                out.push_str(&format!(
                    "                          \"region\": {{ \"startLine\": {} }}\n",
                    step.line.max(1)
                ));
                out.push_str("                        },\n");
                out.push_str(&format!(
                    "                        \"message\": {{ \"text\": \"{}\" }}\n",
                    escape(&step.message)
                ));
                out.push_str("                      }\n                    }");
                if step_idx + 1 < finding.flow.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(
                "                  ]\n                }\n              ]\n            \
                 }\n          ],\n",
            );
        }
        out.push_str("          \"locations\": [\n            {\n");
        out.push_str("              \"physicalLocation\": {\n");
        out.push_str(&format!(
            "                \"artifactLocation\": {{ \"uri\": \"{}\" }},\n",
            escape(&finding.path)
        ));
        out.push_str(&format!(
            "                \"region\": {{ \"startLine\": {} }}\n",
            finding.line.max(1)
        ));
        out.push_str("              }\n            }\n          ]\n");
        out.push_str("        }");
        if idx + 1 < findings.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}
