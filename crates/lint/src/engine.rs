//! Workspace walking and report assembly.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::allow::Allowlist;
use crate::rules::{check, FileCtx, Rule, Violation};

/// The outcome of linting a tree.
#[derive(Debug, Default)]
pub struct Report {
    /// `file:line: RULE: message` diagnostics for violations beyond the
    /// allowlist budget.
    pub diagnostics: Vec<String>,
    /// Informational notes (stale or over-generous allowlist entries).
    pub notes: Vec<String>,
    /// Files scanned.
    pub files: usize,
    /// Total violations found (allowlisted ones included).
    pub violations: usize,
}

impl Report {
    /// True when no violation exceeded its allowlist budget.
    pub fn ok(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    parts.join("/")
}

/// Lint every `.rs` file under `root` against the `lint.allow` budget at
/// the root. Returns `Err` only for environmental failures (unreadable
/// tree, malformed allowlist); rule violations land in the [`Report`].
pub fn lint_root(root: &Path) -> Result<Report, String> {
    if !root.join("Cargo.toml").is_file() {
        return Err(format!(
            "{} does not look like a workspace root (no Cargo.toml)",
            root.display()
        ));
    }
    let allow = match fs::read_to_string(root.join("lint.allow")) {
        Ok(text) => Allowlist::parse(&text)?,
        Err(_) => Allowlist::default(),
    };

    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();

    let mut grouped: BTreeMap<(Rule, String), Vec<Violation>> = BTreeMap::new();
    let mut report = Report::default();
    for file in &files {
        let rel = rel_path(root, file);
        let source = fs::read_to_string(file).map_err(|e| format!("cannot read {rel}: {e}"))?;
        let ctx = FileCtx::classify(&rel);
        for violation in check(&ctx, &source) {
            report.violations += 1;
            grouped
                .entry((violation.rule, rel.clone()))
                .or_default()
                .push(violation);
        }
        report.files += 1;
    }

    for ((rule, path), violations) in &grouped {
        let budget = allow.budget(*rule, path);
        if violations.len() > budget {
            for v in violations {
                report.diagnostics.push(format!(
                    "{path}:{}: {}: {}",
                    v.line,
                    rule.name(),
                    v.message
                ));
            }
            report.diagnostics.push(format!(
                "{path}: {}: {} violation(s), allowlist budget is {budget}",
                rule.name(),
                violations.len()
            ));
        } else if violations.len() < budget {
            report.notes.push(format!(
                "note: lint.allow budgets {budget} for {} {path} but only {} remain — tighten it",
                rule.name(),
                violations.len()
            ));
        }
    }
    for (rule, path, budget) in allow.entries() {
        if budget > 0 && !grouped.contains_key(&(rule, path.to_owned())) {
            report.notes.push(format!(
                "note: stale lint.allow entry {} {path} {budget} — no violations remain",
                rule.name()
            ));
        }
    }
    Ok(report)
}
