//! Workspace walking, the four-pass driver and report assembly.
//!
//! Pass 1 reads every `.rs` file once, scans it ([`crate::scan`]),
//! tokenizes it, parses its item tree ([`crate::items`]) and feeds the
//! workspace symbol table ([`crate::symbols`]); the per-file rules
//! (L1–L6, L8) run on the same artifacts. Pass 2 derives the
//! workspace-level L7 violations from the completed symbol table. Pass 3
//! builds the interprocedural call graph ([`crate::callgraph`]) over the
//! retained library-file artifacts and, when a `lint.roots` file sits
//! beside `lint.allow`, runs the reachability rules L9–L11
//! ([`crate::reach`]). Pass 4 builds intraprocedural CFGs over the same
//! token streams ([`crate::cfg`]) and runs the forward-dataflow rules
//! L12–L14 ([`crate::dataflow`]), composing per-function summaries
//! through the pass-3 call graph. All passes' findings then meet the
//! `lint.allow` budgets: groups over budget become failing diagnostics,
//! groups under budget become tightening notes, stale entries (path gone
//! from the tree, or a budget with zero remaining violations) become
//! hard errors, and every individual finding is retained in
//! [`Report::findings`] for the SARIF emitter.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

use crate::allow::Allowlist;
use crate::callgraph::CallGraph;
use crate::dataflow::check_dataflow;
use crate::items::{parse_items, tokenize, Item, Tok};
use crate::reach::{check_reachability, parse_roots};
use crate::rules::{check_tokens, FileCtx, FileKind, FlowStep, Rule, Violation};
use crate::scan::scan;
use crate::symbols::SymbolTable;

/// One finding with its allowlist disposition, as consumed by the SARIF
/// emitter.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
    /// True when the finding's (rule, file) group exceeded its
    /// `lint.allow` budget — i.e. it fails the build.
    pub over_budget: bool,
    /// For reachability findings (L9–L11) and dataflow findings
    /// (L12–L14): the root-to-construct call chain or the
    /// intraprocedural path, emitted as a SARIF `codeFlows` thread
    /// flow. Empty for the per-file and symbol-table rules.
    pub flow: Vec<FlowStep>,
}

/// The outcome of linting a tree.
#[derive(Debug, Default)]
pub struct Report {
    /// `file:line: RULE: message` diagnostics for violations beyond the
    /// allowlist budget.
    pub diagnostics: Vec<String>,
    /// Informational notes (stale or over-generous allowlist entries).
    pub notes: Vec<String>,
    /// Files scanned.
    pub files: usize,
    /// Total violations found (allowlisted ones included).
    pub violations: usize,
    /// Every individual finding with its budget disposition, ordered by
    /// (rule, path, line) — input to [`crate::sarif::to_sarif`].
    pub findings: Vec<Finding>,
}

impl Report {
    /// True when no violation exceeded its allowlist budget.
    pub fn ok(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    parts.join("/")
}

/// Lint every `.rs` file under `root` against the `lint.allow` budget at
/// the root. Returns `Err` only for environmental failures (unreadable
/// tree, malformed allowlist); rule violations land in the [`Report`].
pub fn lint_root(root: &Path) -> Result<Report, String> {
    if !root.join("Cargo.toml").is_file() {
        return Err(format!(
            "{} does not look like a workspace root (no Cargo.toml)",
            root.display()
        ));
    }
    let allow = match fs::read_to_string(root.join("lint.allow")) {
        Ok(text) => Allowlist::parse(&text)?,
        Err(_) => Allowlist::default(),
    };

    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();

    // Pass 1: per-file scanning, item trees, symbol collection, and the
    // per-file rules L1–L6/L8.
    let mut grouped: BTreeMap<(Rule, String), Vec<Violation>> = BTreeMap::new();
    let mut symbols = SymbolTable::new();
    let mut report = Report::default();
    // Library-file artifacts retained for the pass-3 call graph.
    let mut lib_files: Vec<(String, Vec<Item>, Vec<Tok>)> = Vec::new();
    let mut scanned_paths: BTreeSet<String> = BTreeSet::new();
    for file in &files {
        let rel = rel_path(root, file);
        scanned_paths.insert(rel.clone());
        let source = fs::read_to_string(file).map_err(|e| format!("cannot read {rel}: {e}"))?;
        let ctx = FileCtx::classify(&rel);
        let lines = scan(&source);
        let toks = tokenize(&lines);
        let items = parse_items(&toks);
        symbols.add_file(&rel, ctx.kind, &items, &toks);
        for violation in check_tokens(&ctx, &lines, &toks) {
            report.violations += 1;
            grouped
                .entry((violation.rule, rel.clone()))
                .or_default()
                .push(violation);
        }
        if ctx.kind == FileKind::Lib && rel.starts_with("crates/") {
            lib_files.push((rel, items, toks));
        }
        report.files += 1;
    }

    // Pass 2: workspace-level L7 over the completed symbol table.
    for def in symbols.unreferenced() {
        report.violations += 1;
        grouped
            .entry((Rule::L7, def.path.clone()))
            .or_default()
            .push(Violation {
                flow: Vec::new(),
                line: def.line,
                rule: Rule::L7,
                message: format!(
                    "`pub {} {}` is never referenced outside {} — demote to pub(crate), \
                     delete, or budget it in lint.allow (rule L7)",
                    def.kind.label(),
                    def.name,
                    def.path
                ),
            });
    }

    // Pass 3: the interprocedural reachability rules L9–L11, anchored at
    // the root sets declared in `lint.roots` (a workspace opts in by
    // declaring its kernels; a root that no longer resolves is a hard
    // error). The call graph is built unconditionally — pass 4 composes
    // with it even when no roots file exists.
    let roots = match fs::read_to_string(root.join("lint.roots")) {
        Ok(text) => parse_roots(&text)?,
        Err(_) => Vec::new(),
    };
    let graph = CallGraph::build(&lib_files);
    for (path, violation) in check_reachability(&graph, &roots)? {
        report.violations += 1;
        grouped
            .entry((violation.rule, path))
            .or_default()
            .push(violation);
    }

    // Pass 4: intraprocedural CFG + forward dataflow — L12 draw balance
    // over the deterministic crates, L13/L14 scratch hygiene from the
    // declared reuse-cycle roots.
    for (path, violation) in check_dataflow(&graph, &lib_files, &roots)? {
        report.violations += 1;
        grouped
            .entry((violation.rule, path))
            .or_default()
            .push(violation);
    }

    for ((rule, path), violations) in &grouped {
        let budget = allow.budget(*rule, path);
        let over = violations.len() > budget;
        for v in violations {
            report.findings.push(Finding {
                path: path.clone(),
                line: v.line,
                rule: *rule,
                message: v.message.clone(),
                over_budget: over,
                flow: v.flow.clone(),
            });
        }
        if over {
            for v in violations {
                report.diagnostics.push(format!(
                    "{path}:{}: {}: {}",
                    v.line,
                    rule.name(),
                    v.message
                ));
            }
            report.diagnostics.push(format!(
                "{path}: {}: {} violation(s), allowlist budget is {budget}",
                rule.name(),
                violations.len()
            ));
        } else if violations.len() < budget {
            report.notes.push(format!(
                "note: lint.allow budgets {budget} for {} {path} but only {} remain — tighten it",
                rule.name(),
                violations.len()
            ));
        }
    }
    // Stale allow entries are hard errors, not notes: a budget whose
    // path left the tree, or whose violations all burned down, rots
    // silently and would mask a regression up to its full size.
    for (rule, path, budget) in allow.entries() {
        if !scanned_paths.contains(path) {
            report.diagnostics.push(format!(
                "lint.allow: stale entry {} {path} {budget} — the path no longer \
                 exists in the workspace; delete the entry",
                rule.name()
            ));
        } else if budget > 0 && !grouped.contains_key(&(rule, path.to_owned())) {
            report.diagnostics.push(format!(
                "lint.allow: stale entry {} {path} {budget} — no violations remain; \
                 delete the entry (budgets must track burn-down)",
                rule.name()
            ));
        }
    }
    Ok(report)
}
