//! Comment- and string-aware source scanning.
//!
//! The rules in [`crate::rules`] must not fire on occurrences inside
//! comments, doc comments (including fenced doc-test code), string and
//! character literals — a naive `grep` would. The scanner walks the file
//! once with a small state machine and produces, per line, the
//! *executable* text only: comments and literal interiors are replaced by
//! spaces (columns preserved), so downstream token matching never sees
//! them. It also records which lines carry doc comments, which rule L4
//! (missing docs) needs.
//!
//! Handled literal forms: line and nested block comments, doc variants
//! (`///`, `//!`, `/** */`, `/*! */`), string/byte-string literals with
//! escapes, raw (byte) strings with arbitrary `#` fences, and character
//! literals — including the `'a'`-vs-`'a` lifetime ambiguity.

/// One scanned source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScannedLine {
    /// The line's text with comments and string/char-literal interiors
    /// blanked to spaces; column positions are preserved.
    pub code: String,
    /// True when the line starts a doc comment (`///`, `//!`, `/**`,
    /// `/*!`) before any code, or continues a doc block comment.
    pub doc: bool,
}

struct Scanner {
    chars: Vec<char>,
    i: usize,
    code: String,
    doc: bool,
    seen_code: bool,
    last_code: Option<char>,
    lines: Vec<ScannedLine>,
}

impl Scanner {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn flush_line(&mut self) {
        let code = std::mem::take(&mut self.code);
        self.lines.push(ScannedLine {
            code,
            doc: self.doc,
        });
        self.doc = false;
        self.seen_code = false;
        self.last_code = None;
    }

    /// Emit one character as executable code and advance.
    fn emit_code(&mut self) {
        let c = self.chars[self.i];
        self.i += 1;
        if c == '\n' {
            self.flush_line();
        } else {
            if !c.is_whitespace() {
                self.seen_code = true;
                self.last_code = Some(c);
            }
            self.code.push(c);
        }
    }

    /// Emit one character as blanked (comment/literal) text and advance.
    fn emit_blank(&mut self) {
        let c = self.chars[self.i];
        self.i += 1;
        if c == '\n' {
            self.flush_line();
        } else {
            self.code.push(' ');
        }
    }

    fn line_comment(&mut self) {
        let is_doc = match self.peek(2) {
            Some('!') => true,
            Some('/') => self.peek(3) != Some('/'),
            _ => false,
        };
        if is_doc && !self.seen_code {
            self.doc = true;
        }
        while self.i < self.chars.len() && self.chars[self.i] != '\n' {
            self.emit_blank();
        }
        // The newline (if any) is consumed by the main loop as code.
    }

    fn block_comment(&mut self) {
        let is_doc = match self.peek(2) {
            Some('!') => true,
            Some('*') => self.peek(3) != Some('*') && self.peek(3) != Some('/'),
            _ => false,
        };
        if is_doc && !self.seen_code {
            self.doc = true;
        }
        self.emit_blank();
        self.emit_blank();
        let mut depth = 1usize;
        while depth > 0 && self.i < self.chars.len() {
            if self.chars[self.i] == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.emit_blank();
                self.emit_blank();
            } else if self.chars[self.i] == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.emit_blank();
                self.emit_blank();
            } else {
                let nl = self.chars[self.i] == '\n';
                self.emit_blank();
                if nl && is_doc {
                    self.doc = true;
                }
            }
        }
    }

    /// Blank a non-raw string from the opening quote; `self.i` must be on
    /// the `"`.
    fn string_literal(&mut self) {
        self.emit_blank(); // opening quote
        while self.i < self.chars.len() {
            match self.chars[self.i] {
                '\\' => {
                    self.emit_blank();
                    if self.i < self.chars.len() {
                        self.emit_blank();
                    }
                }
                '"' => {
                    self.emit_blank();
                    return;
                }
                _ => self.emit_blank(),
            }
        }
    }

    /// Blank a raw string; `self.i` must be on the `r` (hash count already
    /// probed by the caller).
    fn raw_string(&mut self, hashes: usize) {
        // Blank the `r`, the hashes and the opening quote.
        for _ in 0..hashes + 2 {
            self.emit_blank();
        }
        while self.i < self.chars.len() {
            if self.chars[self.i] == '"' && self.closing_hashes(hashes) {
                for _ in 0..hashes + 1 {
                    self.emit_blank();
                }
                return;
            }
            self.emit_blank();
        }
    }

    fn closing_hashes(&self, hashes: usize) -> bool {
        (1..=hashes).all(|h| self.peek(h) == Some('#'))
    }

    /// Number of `#` characters starting at offset `from`, followed by a
    /// quote — i.e. whether `r`/`br` at the cursor opens a raw string.
    fn raw_open(&self, from: usize) -> Option<usize> {
        let mut h = 0usize;
        while self.peek(from + h) == Some('#') {
            h += 1;
        }
        (self.peek(from + h) == Some('"')).then_some(h)
    }

    /// Handle a `'` at the cursor: a char literal is blanked, a lifetime
    /// (or loop label) is kept as code.
    fn quote(&mut self) {
        if self.peek(1) == Some('\\') {
            // Escaped char literal: blank the opener, the backslash and
            // the escaped character itself — consuming the latter before
            // looking for the closing quote, so `'\''` closes on its
            // fourth char and the second backslash of `'\\'` is not
            // misread as opening another escape.
            self.emit_blank(); // '
            self.emit_blank(); // backslash
            if self.i < self.chars.len() {
                self.emit_blank(); // the escaped character
            }
            while self.i < self.chars.len() {
                match self.chars[self.i] {
                    '\\' => {
                        self.emit_blank();
                        if self.i < self.chars.len() {
                            self.emit_blank();
                        }
                    }
                    '\'' => {
                        self.emit_blank();
                        return;
                    }
                    _ => self.emit_blank(),
                }
            }
        } else if self.peek(2) == Some('\'') && self.peek(1) != Some('\'') {
            // Plain char literal, e.g. 'a' — including '{' and '}'.
            self.emit_blank();
            self.emit_blank();
            self.emit_blank();
        } else {
            // Lifetime or loop label: executable code.
            self.emit_code();
        }
    }

    fn prev_is_ident(&self) -> bool {
        self.last_code
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
    }

    fn run(mut self) -> Vec<ScannedLine> {
        while self.i < self.chars.len() {
            let c = self.chars[self.i];
            match c {
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                '\'' => self.quote(),
                'r' if !self.prev_is_ident() => match self.raw_open(1) {
                    Some(h) => self.raw_string(h),
                    None => self.emit_code(),
                },
                'b' if !self.prev_is_ident() => {
                    if self.peek(1) == Some('"') {
                        self.emit_blank(); // the b prefix
                        self.string_literal();
                    } else if self.peek(1) == Some('\'') {
                        self.emit_blank();
                        self.quote();
                    } else if self.peek(1) == Some('r') {
                        match self.raw_open(2) {
                            Some(h) => {
                                self.emit_blank(); // the b prefix
                                self.raw_string(h);
                            }
                            None => self.emit_code(),
                        }
                    } else {
                        self.emit_code();
                    }
                }
                _ => self.emit_code(),
            }
        }
        if !self.code.is_empty() || self.doc {
            self.flush_line();
        }
        self.lines
    }
}

/// Scan a source file into per-line executable text plus doc-comment
/// flags.
pub fn scan(source: &str) -> Vec<ScannedLine> {
    Scanner {
        chars: source.chars().collect(),
        i: 0,
        code: String::new(),
        doc: false,
        seen_code: false,
        last_code: None,
        lines: Vec::new(),
    }
    .run()
}

/// Mark the lines belonging to `#[cfg(test)]`-gated items.
///
/// Rules L1/L2/L4/L5 skip these regions: test code may unwrap, cast and
/// go undocumented freely. Detection is brace-based on the blanked text,
/// so braces inside strings or comments cannot derail it: from a
/// `#[cfg(test)]` attribute line, the region extends to the matching
/// close of the first `{` opened afterwards (or to the first top-level
/// `;` for brace-less items).
pub fn test_regions(lines: &[ScannedLine]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let trimmed = lines[i].code.trim_start();
        if !(trimmed.starts_with("#[") && trimmed.contains("cfg(test")) {
            i += 1;
            continue;
        }
        let mut depth = 0usize;
        let mut opened = false;
        let mut j = i;
        'region: while j < lines.len() {
            in_test[j] = true;
            for ch in lines[j].code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if opened && depth == 0 {
                            break 'region;
                        }
                    }
                    ';' if !opened && depth == 0 => break 'region,
                    _ => {}
                }
            }
            j += 1;
        }
        i = j + 1;
    }
    in_test
}
