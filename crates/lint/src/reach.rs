//! Pass 3 of the semantic analyzer: transitive reachability over the
//! call graph, enforcing the workspace's two load-bearing contracts
//! *statically* — rules L9 (zero-alloc), L10 (panic-free) and L11
//! (ambient-free), each anchored at root sets declared in `lint.roots`.
//!
//! `lint.roots` holds one root per line, `RULE path fn_name`:
//!
//! ```text
//! L9  crates/core/src/chord/fast.rs    solve_into
//! L10 crates/chord/src/network.rs      lookup_with_aux_faults
//! L11 crates/sim/src/stable.rs         run_stable
//! ```
//!
//! Comments (`#`) and blank lines are ignored. A root naming a function
//! the call graph cannot find is a **hard error**, not a skipped entry:
//! a renamed kernel must not silently disable its gate. The same file
//! also declares the pass-4 reuse-cycle roots (L13/L14), which this
//! parser accepts and [`crate::dataflow`] consumes.
//!
//! Per rule, one breadth-first traversal runs from all of the rule's
//! roots at once; every function reached is scanned for the rule's
//! forbidden constructs (matched against the rendered call-site labels
//! of [`crate::callgraph`], plus direct index expressions for L10). Each
//! hit becomes a [`Violation`] carrying a root-first [`FlowStep`] chain
//! — root declaration, every intermediate call, the construct — which
//! the SARIF emitter renders as a `codeFlows` thread flow. Findings
//! enter the normal `lint.allow` budget machinery grouped by the file
//! that *contains the construct*, so a reviewed `.expect("proof")`
//! budget works exactly as it does for L1.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::callgraph::CallGraph;
use crate::rules::{FlowStep, Rule, Violation};

/// One parsed `lint.roots` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootSpec {
    /// The rule this root anchors: reachability (L9, L10, L11) or a
    /// pass-4 reuse cycle (L13, L14 — consumed by [`crate::dataflow`]).
    pub rule: Rule,
    /// Workspace-relative path of the file defining the root function.
    pub path: String,
    /// The root function's name.
    pub name: String,
}

/// Parse the `lint.roots` file. Malformed lines and non-reachability
/// rules are errors: the roots file is contract surface, not config.
pub fn parse_roots(text: &str) -> Result<Vec<RootSpec>, String> {
    let mut roots = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (rule, path, name) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(r), Some(p), Some(n), None) => (r, p, n),
            _ => {
                return Err(format!(
                    "lint.roots:{}: expected `RULE path fn_name`, got `{line}`",
                    idx + 1
                ));
            }
        };
        let rule = Rule::parse(rule)
            .ok_or_else(|| format!("lint.roots:{}: unknown rule `{rule}`", idx + 1))?;
        if !matches!(
            rule,
            Rule::L9 | Rule::L10 | Rule::L11 | Rule::L13 | Rule::L14
        ) {
            return Err(format!(
                "lint.roots:{}: {} is not a rooted rule (only L9/L10/L11 reachability \
                 and L13/L14 reuse-cycle roots are accepted)",
                idx + 1,
                rule.name()
            ));
        }
        roots.push(RootSpec {
            rule,
            path: path.to_owned(),
            name: name.to_owned(),
        });
    }
    Ok(roots)
}

/// The forbidden construct labels of one reachability rule.
fn forbidden_labels(rule: Rule) -> &'static [&'static str] {
    match rule {
        // Allocating constructs: the static complement of the
        // `count-allocs` runtime gate. `.clone` is matched untyped — a
        // `Copy` value has no reason to spell `.clone()`, so reachable
        // clones are treated as heap clones until proven otherwise.
        Rule::L9 => &[
            ".collect",
            ".to_vec",
            ".to_owned",
            ".to_string",
            ".clone",
            "vec!",
            "format!",
            "Box::new",
            "Rc::new",
            "Arc::new",
            "Vec::new",
            "Vec::with_capacity",
            "Vec::from",
            "VecDeque::new",
            "VecDeque::with_capacity",
            "String::new",
            "String::from",
            "String::with_capacity",
            "BTreeMap::new",
            "BTreeSet::new",
            "HashMap::new",
            "HashSet::new",
        ],
        // Panic constructs; direct index expressions are handled
        // separately from the call-site labels.
        Rule::L10 => &[
            ".unwrap",
            ".expect",
            "panic!",
            "unreachable!",
            "todo!",
            "unimplemented!",
        ],
        // Entropy / time / ambient-state sources. `peercache-par` is the
        // sanctioned ambient boundary (thread count, scoped spawns) and
        // is exempted at the check site, not here.
        Rule::L11 => &[
            "Instant::now",
            "SystemTime::now",
            "RandomState::new",
            "RandomState::default",
            "thread::spawn",
            "env::var",
            "env::var_os",
            "env::args",
            "env::vars",
        ],
        _ => &[],
    }
}

fn contract_phrase(rule: Rule) -> &'static str {
    match rule {
        Rule::L9 => "the solve_into kernels must not allocate in steady state",
        Rule::L10 => "the fault walks must degrade gracefully, never panic",
        Rule::L11 => "deterministic entry points must not read ambient state",
        _ => "",
    }
}

/// Run rules L9–L11 over the call graph. Returns `(construct-file path,
/// violation)` pairs for the engine's budget grouping, ordered by
/// (rule, path, line, label). `Err` only for an unresolvable root.
pub fn check_reachability(
    graph: &CallGraph,
    roots: &[RootSpec],
) -> Result<Vec<(String, Violation)>, String> {
    let mut out: Vec<(String, Violation)> = Vec::new();
    for rule in [Rule::L9, Rule::L10, Rule::L11] {
        let specs: Vec<&RootSpec> = roots.iter().filter(|r| r.rule == rule).collect();
        if specs.is_empty() {
            continue;
        }

        // Seed the traversal; every root must bind to a graph node.
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut visited: BTreeSet<usize> = BTreeSet::new();
        // fn idx → (caller idx, call line, call label); roots have none.
        let mut parent: BTreeMap<usize, (usize, usize, String)> = BTreeMap::new();
        for spec in &specs {
            let bound = graph.named_in_file(&spec.path, &spec.name);
            if bound.is_empty() {
                return Err(format!(
                    "lint.roots: no function `{}` found in {} (rule {}) — \
                     roots must track renames, they do not skip silently",
                    spec.name,
                    spec.path,
                    rule.name()
                ));
            }
            for idx in bound {
                if visited.insert(idx) {
                    queue.push_back(idx);
                }
            }
        }
        let root_set: BTreeSet<usize> = visited.clone();

        while let Some(fn_idx) = queue.pop_front() {
            for site in graph.calls(fn_idx) {
                for &target in &site.targets {
                    if visited.insert(target) {
                        parent.insert(target, (fn_idx, site.line, site.label.clone()));
                        queue.push_back(target);
                    }
                }
            }
        }

        // Scan every reached function for the rule's constructs.
        let labels = forbidden_labels(rule);
        let mut seen: BTreeSet<(String, usize, String)> = BTreeSet::new();
        for &fn_idx in &visited {
            let node = &graph.fns()[fn_idx];
            if rule == Rule::L11
                && (node.path.starts_with("crates/par/")
                    || node.path.starts_with("crates/node/src/store"))
            {
                // `peercache-par` (pool width, scoped spawns) and the
                // peer store's file persistence are the two sanctioned
                // ambient boundaries; nothing routing-visible reads
                // either.
                continue;
            }
            let mut hits: Vec<(usize, String)> = graph
                .calls(fn_idx)
                .iter()
                .filter(|s| labels.contains(&s.label.as_str()))
                .map(|s| (s.line, format!("`{}`", s.label)))
                .collect();
            if rule == Rule::L10 {
                hits.extend(
                    graph
                        .index_lines(fn_idx)
                        .iter()
                        .map(|&l| (l, "direct index expression".to_owned())),
                );
            }
            hits.sort();
            for (line, construct) in hits {
                if !seen.insert((node.path.clone(), line, construct.clone())) {
                    continue;
                }
                let flow = build_flow(graph, &root_set, &parent, fn_idx, line, &construct, rule);
                let root_step = &flow[0];
                out.push((
                    node.path.clone(),
                    Violation {
                        line,
                        rule,
                        message: format!(
                            "{construct} in `{}` is reachable from {} root `{}` \
                             ({} call(s) deep) — {}; see lint.roots and \
                             `--explain {}`",
                            node.qualified_name(),
                            rule.name(),
                            root_step.message,
                            flow.len().saturating_sub(2),
                            contract_phrase(rule),
                            rule.name()
                        ),
                        flow,
                    },
                ));
            }
        }
    }
    out.sort_by(|a, b| {
        (a.1.rule, &a.0, a.1.line, &a.1.message).cmp(&(b.1.rule, &b.0, b.1.line, &b.1.message))
    });
    Ok(out)
}

/// Assemble the root-first call chain ending at `(fn_idx, line)`.
fn build_flow(
    graph: &CallGraph,
    roots: &BTreeSet<usize>,
    parent: &BTreeMap<usize, (usize, usize, String)>,
    fn_idx: usize,
    construct_line: usize,
    construct: &str,
    rule: Rule,
) -> Vec<FlowStep> {
    // Walk up to the root, collecting (caller, line, label) edges.
    let mut edges: Vec<(usize, usize, String)> = Vec::new();
    let mut cur = fn_idx;
    while !roots.contains(&cur) {
        let Some((caller, line, label)) = parent.get(&cur) else {
            break; // unreachable by construction; degrade to a short chain
        };
        edges.push((*caller, *line, label.clone()));
        cur = *caller;
    }
    edges.reverse();

    let root = &graph.fns()[cur];
    let mut flow = vec![FlowStep {
        path: root.path.clone(),
        line: root.line,
        message: root.qualified_name(),
    }];
    for (caller, line, label) in &edges {
        let caller_node = &graph.fns()[*caller];
        flow.push(FlowStep {
            path: caller_node.path.clone(),
            line: *line,
            message: format!("`{}` calls `{label}`", caller_node.qualified_name()),
        });
    }
    let node = &graph.fns()[fn_idx];
    flow.push(FlowStep {
        path: node.path.clone(),
        line: construct_line,
        message: format!(
            "{construct} inside `{}` violates rule {}",
            node.qualified_name(),
            rule.name()
        ),
    });
    flow
}
