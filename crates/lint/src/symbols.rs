//! Pass 1, workspace level: the symbol table behind rule L7.
//!
//! Each library file under `crates/*/src` contributes its `pub` items as
//! **definitions**; every file in the workspace (tests, benches and
//! examples included — a symbol exercised only by a test is still
//! exercised) contributes the multiset of identifiers it mentions as
//! **references**. A public definition that no file other than its own
//! ever names is *unreferenced*: either dead API surface to delete, or
//! intentional surface to record in `lint.allow` under an L7 budget.
//!
//! The match is name-based, which is deliberately conservative in the
//! lint-friendly direction: two crates exporting the same name shadow
//! each other's liveness, so a true-dead item can hide behind a
//! same-named live one — but a *flagged* item really is unnamed anywhere
//! else in the workspace. False negatives over false positives.

use std::collections::BTreeMap;

use crate::items::{walk_items, Item, ItemKind, TokKind, Visibility};
use crate::rules::FileKind;

/// One public definition recorded by the symbol table.
#[derive(Debug, Clone)]
pub struct PubDef {
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// 1-based definition line.
    pub line: usize,
    /// The item kind (for the diagnostic message).
    pub kind: ItemKind,
    /// The item's name.
    pub name: String,
}

/// Workspace-wide table of public definitions and name references.
#[derive(Debug, Default)]
pub struct SymbolTable {
    defs: Vec<PubDef>,
    /// name → paths of files that mention it (with multiplicity folded
    /// away; a BTreeMap keeps reporting order deterministic).
    refs: BTreeMap<String, Vec<String>>,
}

/// True when `path` contributes `pub` definitions to the table: library
/// source of an internal crate (`crates/<name>/src/…`), excluding the
/// bench crate whose whole surface is binary-facing.
fn defines_api(path: &str, kind: FileKind) -> bool {
    kind == FileKind::Lib && path.starts_with("crates/") && path.contains("/src/")
}

impl SymbolTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one file's definitions (when it is API-defining) and its
    /// identifier references.
    pub fn add_file(
        &mut self,
        path: &str,
        kind: FileKind,
        items: &[Item],
        toks: &[crate::items::Tok],
    ) {
        if defines_api(path, kind) && !is_crate_root(path) {
            walk_items(items, &mut |item| {
                if item.vis == Visibility::Public
                    && !item.cfg_test
                    && item.kind != ItemKind::Impl
                    && !item.name.is_empty()
                    && !item.attrs.iter().any(|a| a.contains("macro_export"))
                {
                    self.defs.push(PubDef {
                        path: path.to_owned(),
                        line: item.line,
                        kind: item.kind,
                        name: item.name.clone(),
                    });
                }
            });
        }
        for tok in toks {
            if let TokKind::Ident(name) = &tok.kind {
                let paths = self.refs.entry(name.clone()).or_default();
                if paths.last().map(String::as_str) != Some(path) {
                    paths.push(path.to_owned());
                }
            }
        }
    }

    /// Public definitions never named outside their defining file,
    /// sorted by path then line for deterministic reporting.
    pub fn unreferenced(&self) -> Vec<&PubDef> {
        let mut dead: Vec<&PubDef> = self
            .defs
            .iter()
            .filter(|def| {
                let named_elsewhere = self
                    .refs
                    .get(&def.name)
                    .is_some_and(|paths| paths.iter().any(|p| p != &def.path));
                !named_elsewhere
            })
            .collect();
        dead.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
        dead
    }

    /// Number of recorded public definitions (for tests).
    pub fn def_count(&self) -> usize {
        self.defs.len()
    }
}

/// Crate roots re-export and `pub mod` their internals; flagging a `pub
/// mod` whose name is only used in paths *within* the crate would be
/// noise, so `lib.rs` items are exempt from definition collection while
/// still contributing references.
fn is_crate_root(path: &str) -> bool {
    path.ends_with("/lib.rs") || path.ends_with("/main.rs")
}
