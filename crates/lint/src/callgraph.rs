//! Pass 3 of the semantic analyzer: the workspace call graph.
//!
//! Built on the item trees ([`crate::items`]) of every library file under
//! `crates/`, this module extracts one [`FnNode`] per function — free
//! functions and `impl`/`trait` methods, `#[cfg(test)]` items excluded —
//! and one [`CallSite`] list per function body. Call resolution is
//! deliberately *lint-grade*:
//!
//! * **Free calls** (`helper(…)`) resolve to same-file functions first
//!   (a shadowed local always wins over a same-named `pub` elsewhere),
//!   then to every free function of that name in the workspace.
//! * **Qualified calls** (`Type::method(…)`, `Self::method(…)`,
//!   `module::helper(…)`) resolve through the `impl`/`trait` self-type
//!   when the qualifier names one, and fall back to free-function
//!   resolution for lowercase module-path qualifiers.
//! * **Method calls** (`value.method(…)`) resolve by name against every
//!   `impl`/`trait` block in the workspace, narrowed to self types whose
//!   name appears somewhere in the calling file (an import-less proxy
//!   for "this type is in scope here"); when no candidate survives the
//!   narrowing, every same-named method stays a target.
//!
//! Anything that resolves to no workspace function — std and vendored
//! callees, macro invocations, closure parameters — is recorded as an
//! **opaque** edge: reachability does not continue through it, but its
//! rendered label (`Vec::new`, `.collect`, `panic!`) is exactly what the
//! reachability rules L9–L11 match their forbidden constructs against.
//! Known false-negative classes of this scheme are documented in
//! DESIGN.md ("Interprocedural pass: call graph & reachability").
//!
//! Statements and items under `#[cfg(test)]` or a `#[cfg(feature = …)]`
//! gate contribute no call sites: test-only and feature-gated code (the
//! `check-invariants` cross-checkers) is outside the default build the
//! contracts bind.

use std::collections::{BTreeMap, BTreeSet};

use crate::items::{ident_at, punct_at, skip_balanced, Item, ItemKind, Tok, TokKind};

/// One function in the workspace call graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// The function's name (raw identifiers arrive folded).
    pub name: String,
    /// The self type of the enclosing `impl`/`trait` block, if any.
    pub self_ty: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based line of the body's closing brace.
    pub end_line: usize,
}

impl FnNode {
    /// `Type::name` for methods, bare `name` for free functions.
    pub fn qualified_name(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// 1-based source line of the callee name.
    pub line: usize,
    /// Rendered callee: `helper`, `Type::method`, `.method` or `name!`.
    pub label: String,
    /// Resolved [`FnNode`] indices; empty for opaque edges.
    pub targets: Vec<usize>,
}

/// The workspace call graph: functions, their call sites, and the
/// direct-index expression sites rule L10 consumes.
#[derive(Debug, Default)]
pub struct CallGraph {
    fns: Vec<FnNode>,
    calls: Vec<Vec<CallSite>>,
    index_lines: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Build the graph from every collected library file's item tree and
    /// token stream (`(path, items, tokens)` triples).
    pub fn build(files: &[(String, Vec<Item>, Vec<Tok>)]) -> CallGraph {
        let mut fns: Vec<FnNode> = Vec::new();
        // Per file: the indices of its functions, plus the set of idents
        // it mentions (the method-resolution narrowing set).
        let mut file_fns: Vec<Vec<usize>> = Vec::new();
        let mut file_idents: Vec<BTreeSet<&str>> = Vec::new();
        for (path, items, toks) in files {
            let mut here = Vec::new();
            collect_fns(path, items, None, &mut fns, &mut here);
            file_fns.push(here);
            file_idents.push(
                toks.iter()
                    .filter_map(|t| match &t.kind {
                        TokKind::Ident(s) => Some(s.as_str()),
                        TokKind::Punct(_) => None,
                    })
                    .collect(),
            );
        }

        // Name → candidate indices, split by free fns vs methods.
        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (idx, f) in fns.iter().enumerate() {
            if f.self_ty.is_some() {
                methods_by_name.entry(&f.name).or_default().push(idx);
            } else {
                free_by_name.entry(&f.name).or_default().push(idx);
            }
        }

        let mut calls = vec![Vec::new(); fns.len()];
        let mut index_lines = vec![Vec::new(); fns.len()];
        for (file_idx, (path, _, toks)) in files.iter().enumerate() {
            let resolver = Resolver {
                fns: &fns,
                free_by_name: &free_by_name,
                methods_by_name: &methods_by_name,
                file_path: path,
                file_idents: &file_idents[file_idx],
            };
            extract_sites(
                toks,
                &file_fns[file_idx],
                &resolver,
                &mut calls,
                &mut index_lines,
            );
        }

        CallGraph {
            fns,
            calls,
            index_lines,
        }
    }

    /// All functions, indexable by the ids in [`CallSite::targets`].
    pub fn fns(&self) -> &[FnNode] {
        &self.fns
    }

    /// The call sites of function `idx`, in source order.
    pub fn calls(&self, idx: usize) -> &[CallSite] {
        self.calls.get(idx).map_or(&[], Vec::as_slice)
    }

    /// 1-based lines of direct `x[i]` index expressions in function
    /// `idx`'s body (total `[..]` full-range slices excluded).
    pub fn index_lines(&self, idx: usize) -> &[usize] {
        self.index_lines.get(idx).map_or(&[], Vec::as_slice)
    }

    /// Indices of the functions named `name` defined in `path` — how the
    /// `lint.roots` entries bind to graph nodes.
    pub fn named_in_file(&self, path: &str, name: &str) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.path == path && f.name == name)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Collect [`FnNode`]s depth-first, carrying the enclosing `impl`/`trait`
/// self type; `#[cfg(test)]` subtrees contribute nothing.
fn collect_fns(
    path: &str,
    items: &[Item],
    self_ty: Option<&str>,
    fns: &mut Vec<FnNode>,
    here: &mut Vec<usize>,
) {
    for item in items {
        if item.cfg_test || attr_feature_gated(&item.attrs) {
            continue;
        }
        match item.kind {
            ItemKind::Fn => {
                here.push(fns.len());
                fns.push(FnNode {
                    path: path.to_owned(),
                    name: item.name.clone(),
                    self_ty: self_ty.map(str::to_owned),
                    line: item.line,
                    end_line: item.end_line,
                });
            }
            ItemKind::Impl | ItemKind::Trait => {
                collect_fns(path, &item.children, Some(&item.name), fns, here);
            }
            ItemKind::Module => {
                collect_fns(path, &item.children, None, fns, here);
            }
            _ => {}
        }
    }
}

/// True when an item's attributes gate it behind a cargo feature
/// (`#[cfg(feature = "…")]` without `not(…)`): such items are absent
/// from the default build the reachability contracts bind.
fn attr_feature_gated(attrs: &[String]) -> bool {
    attrs
        .iter()
        .any(|a| a.contains("cfg") && a.contains("feature") && !a.contains("not"))
}

/// Keywords that legally precede a parenthesized expression; an ident in
/// call position matching one of these is control flow, not a call. A
/// *raw*-identifier function named like one of them (`fn r#match`) is
/// therefore invisible to the graph — a documented false-negative class.
const CALL_KEYWORDS: [&str; 12] = [
    "if", "else", "match", "while", "for", "loop", "return", "break", "in", "move", "yield",
    "await",
];

struct Resolver<'a> {
    fns: &'a [FnNode],
    free_by_name: &'a BTreeMap<&'a str, Vec<usize>>,
    methods_by_name: &'a BTreeMap<&'a str, Vec<usize>>,
    file_path: &'a str,
    file_idents: &'a BTreeSet<&'a str>,
}

impl Resolver<'_> {
    /// `helper(…)`: same-file functions win; otherwise every free
    /// function of that name in the workspace.
    fn free(&self, name: &str) -> Vec<usize> {
        let Some(all) = self.free_by_name.get(name) else {
            return Vec::new();
        };
        let local: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&i| self.fns[i].path == self.file_path)
            .collect();
        if local.is_empty() {
            all.clone()
        } else {
            local
        }
    }

    /// `value.method(…)`: every same-named method whose self type is
    /// named somewhere in the calling file. When no self type is in
    /// scope the call stays opaque rather than fanning out to every
    /// same-named method in the workspace: a bare `a.max(b)` on a number
    /// must not resolve to some unrelated `SparseMax::max`. The price is
    /// a false-negative class — receivers of types the calling file
    /// never names by ident — documented in DESIGN.md.
    fn method(&self, name: &str) -> Vec<usize> {
        let Some(all) = self.methods_by_name.get(name) else {
            return Vec::new();
        };
        all.iter()
            .copied()
            .filter(|&i| {
                self.fns[i]
                    .self_ty
                    .as_deref()
                    .is_some_and(|ty| self.file_idents.contains(ty))
            })
            .collect()
    }

    /// `Qual::name(…)`, with `Self` rewritten to the caller's self type.
    fn qualified(&self, qual: &str, name: &str, caller_self_ty: Option<&str>) -> Vec<usize> {
        let qual = if qual == "Self" {
            match caller_self_ty {
                Some(ty) => ty,
                None => return Vec::new(),
            }
        } else {
            qual
        };
        let typed: Vec<usize> = self
            .methods_by_name
            .get(name)
            .map(|all| {
                all.iter()
                    .copied()
                    .filter(|&i| self.fns[i].self_ty.as_deref() == Some(qual))
                    .collect()
            })
            .unwrap_or_default();
        if !typed.is_empty() {
            return typed;
        }
        // Lowercase qualifiers are module/crate paths: the target is a
        // free function elsewhere in the workspace.
        if qual.chars().next().is_some_and(char::is_lowercase) {
            return self.free_by_name.get(name).cloned().unwrap_or_default();
        }
        Vec::new()
    }
}

/// Walk one file's token stream, attributing each call site and index
/// expression to the innermost enclosing function from `file_fns`.
fn extract_sites(
    toks: &[Tok],
    file_fns: &[usize],
    resolver: &Resolver<'_>,
    calls: &mut [Vec<CallSite>],
    index_lines: &mut [Vec<usize>],
) {
    // (start_line, end_line, fn index), for innermost-span attribution.
    let spans: Vec<(usize, usize, usize)> = file_fns
        .iter()
        .map(|&i| (resolver.fns[i].line, resolver.fns[i].end_line, i))
        .collect();
    let enclosing = |line_1: usize| -> Option<usize> {
        spans
            .iter()
            .filter(|&&(s, e, _)| s <= line_1 && line_1 <= e)
            .min_by_key(|&&(s, e, _)| e - s)
            .map(|&(_, _, idx)| idx)
    };

    let mut i = 0usize;
    let mut prev_was_fn_kw = false;
    while i < toks.len() {
        // `#[cfg(test)]` / `#[cfg(feature = …)]` on a *statement* (the
        // item parser only sees item-level gates): skip the attribute and
        // the one statement or block it gates.
        if punct_at(toks, i) == Some('#') {
            let start = i;
            let gated = skip_attr(toks, &mut i);
            if gated {
                skip_gated_statement(toks, &mut i);
            }
            if i == start {
                i += 1;
            }
            continue;
        }

        let Some(name) = ident_at(toks, i) else {
            // Direct index expression: `x[…]`, `f(x)[…]`, `x[y][…]`.
            if punct_at(toks, i) == Some('[') && is_index_site(toks, i) {
                if let Some(f) = enclosing(toks[i].line + 1) {
                    index_lines[f].push(toks[i].line + 1);
                }
            }
            i += 1;
            continue;
        };

        if name == "fn" {
            prev_was_fn_kw = true;
            i += 1;
            continue;
        }
        let is_decl = prev_was_fn_kw;
        prev_was_fn_kw = false;

        // Call forms: `name (`, `name ! (…)`, `.name (`, `Qual :: name (`.
        let next = punct_at(toks, i + 1);
        let line_1 = toks[i].line + 1;
        let site = if next == Some('!') && matches!(punct_at(toks, i + 2), Some('(' | '[' | '{')) {
            Some(CallSite {
                line: line_1,
                label: format!("{name}!"),
                targets: Vec::new(),
            })
        } else if next == Some('(') && !is_decl && !CALL_KEYWORDS.contains(&name) {
            if punct_at(toks, i.wrapping_sub(1)) == Some('.') {
                Some(CallSite {
                    line: line_1,
                    label: format!(".{name}"),
                    targets: resolver.method(name),
                })
            } else if punct_at(toks, i.wrapping_sub(1)) == Some(':')
                && punct_at(toks, i.wrapping_sub(2)) == Some(':')
            {
                match ident_at(toks, i.wrapping_sub(3)) {
                    Some(qual) => {
                        let caller_self_ty =
                            enclosing(line_1).and_then(|f| resolver.fns[f].self_ty.clone());
                        Some(CallSite {
                            line: line_1,
                            label: format!("{qual}::{name}"),
                            targets: resolver.qualified(qual, name, caller_self_ty.as_deref()),
                        })
                    }
                    // Turbofish and `<T as Trait>::…` qualifiers: opaque.
                    None => Some(CallSite {
                        line: line_1,
                        label: format!("::{name}"),
                        targets: Vec::new(),
                    }),
                }
            } else {
                Some(CallSite {
                    line: line_1,
                    label: name.to_owned(),
                    targets: resolver.free(name),
                })
            }
        } else {
            None
        };
        if let Some(site) = site {
            if let Some(f) = enclosing(line_1) {
                calls[f].push(site);
            }
        }
        i += 1;
    }
}

/// Skip an attribute starting at the `#` and report whether it is a
/// build-excluding `cfg` gate (`cfg(test)` or a non-`not` feature gate).
fn skip_attr(toks: &[Tok], i: &mut usize) -> bool {
    *i += 1; // '#'
    if punct_at(toks, *i) == Some('!') {
        *i += 1;
    }
    if punct_at(toks, *i) != Some('[') {
        return false;
    }
    let mut text = String::new();
    let mut depth = 0usize;
    while *i < toks.len() {
        match &toks[*i].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    *i += 1;
                    break;
                }
            }
            TokKind::Ident(s) => {
                text.push_str(s);
                text.push(' ');
            }
            TokKind::Punct(c) => text.push(*c),
        }
        *i += 1;
    }
    text.contains("cfg")
        && (text.contains("test") || (text.contains("feature") && !text.contains("not")))
}

/// Skip the one statement or braced block a cfg attribute gates: to the
/// first top-level `;`, or past the first balanced `{…}` — whichever the
/// gated code reaches first.
fn skip_gated_statement(toks: &[Tok], i: &mut usize) {
    let mut depth = 0usize;
    while *i < toks.len() {
        match punct_at(toks, *i) {
            Some('(') | Some('[') => depth += 1,
            Some(')') | Some(']') => depth = depth.saturating_sub(1),
            Some('{') => {
                skip_balanced(toks, i, '{', '}');
                return;
            }
            Some(';') if depth == 0 => {
                *i += 1;
                return;
            }
            Some('}') if depth == 0 => return, // malformed gate: stop early
            _ => {}
        }
        *i += 1;
    }
}

/// True when the `[` at `i` opens an index expression: preceded by an
/// identifier or a closing `)`/`]`, and not the total `[..]` full-range
/// slice.
fn is_index_site(toks: &[Tok], i: usize) -> bool {
    let indexable_recv = match toks.get(i.wrapping_sub(1)).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => {
            // A lifetime (`&'a [Id]`) is slice-type syntax, not a value.
            !CALL_KEYWORDS.contains(&s.as_str())
                && s != "as"
                && punct_at(toks, i.wrapping_sub(2)) != Some('\'')
        }
        Some(TokKind::Punct(')' | ']')) => true,
        _ => false,
    };
    if !indexable_recv {
        return false;
    }
    let full_range = punct_at(toks, i + 1) == Some('.')
        && punct_at(toks, i + 2) == Some('.')
        && punct_at(toks, i + 3) == Some(']');
    !full_range
}
