//! # peercache
//!
//! **Accelerating lookups in P2P systems by caching auxiliary neighbor
//! pointers** — a from-scratch Rust reproduction of Deb, Linga, Rastogi &
//! Srinivasan (ICDE 2008).
//!
//! Structured P2P overlays (Chord, Pastry) give every node `O(log n)`
//! *core* neighbors tuned for worst-case lookup hops. This library adds
//! the paper's contribution: each node also caches `k` **auxiliary
//! neighbors**, chosen *optimally* from the peers it has seen queries
//! for, to minimise the frequency-weighted average lookup cost
//! `Σ_v f_v (1 + d(v, N ∪ A))`.
//!
//! ## Crate map
//!
//! | Module | Backing crate | Contents |
//! |--------|---------------|----------|
//! | [`id`] | `peercache-id` | b-bit ring identifiers, prefix/digit ops, hop estimates |
//! | [`freq`] | `peercache-freq` | access-frequency tracking (exact, Space-Saving, decayed, windowed) |
//! | [`select`] | `peercache-core` | the optimal selection algorithms (Pastry trie DP/greedy/incremental, Chord DPs, QoS, baselines) |
//! | [`chord`] | `peercache-chord` | Chord overlay (fingers, successor lists, stabilization, churn) |
//! | [`pastry`] | `peercache-pastry` | Pastry overlay (prefix routing, leaf sets, locality-aware forwarding) |
//! | [`tapestry`] | `peercache-tapestry` | Tapestry overlay (surrogate routing; §I's Pastry-transfer claim) |
//! | [`skipgraph`] | `peercache-skipgraph` | skip-graph overlay (membership-vector levels; §I's Chord-transfer claim) |
//! | [`workload`] | `peercache-workload` | Zipf samplers, popularity rankings, item catalogs |
//! | [`faults`] | `peercache-faults` | deterministic fault plans, traced routes, walk steps |
//! | [`sim`] | `peercache-sim` | deterministic event simulation + the paper's experiments |
//! | [`node`] | `peercache-node` | deterministic event-loop node runtime + persistent peer store |
//!
//! ## Quickstart
//!
//! ```
//! use peercache::select::chord::select_fast;
//! use peercache::{Candidate, ChordProblem, Id, IdSpace};
//!
//! // A node at id 0 with two core fingers has seen queries for two peers;
//! // which single extra pointer minimises its average lookup hops?
//! let space = IdSpace::new(16).unwrap();
//! let problem = ChordProblem::new(
//!     space,
//!     Id::new(0),
//!     vec![Id::new(1), Id::new(700)],
//!     vec![
//!         Candidate::new(Id::new(40_000), 120.0), // hot and far
//!         Candidate::new(Id::new(3), 2.0),        // cold and near
//!     ],
//!     1,
//! )
//! .unwrap();
//! let selection = select_fast(&problem).unwrap();
//! assert_eq!(selection.aux, vec![Id::new(40_000)]);
//! ```
//!
//! Run the examples for full scenarios:
//! `cargo run --release --example quickstart` (and `p2p_dns`,
//! `location_service`, `qos_classes`), and the figure harness:
//! `cargo run --release -p peercache-bench --bin all_figures`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use peercache_chord as chord;
pub use peercache_core as select;
pub use peercache_faults as faults;
pub use peercache_freq as freq;
pub use peercache_id as id;
pub use peercache_node as node;
pub use peercache_pastry as pastry;
pub use peercache_sim as sim;
pub use peercache_skipgraph as skipgraph;
pub use peercache_tapestry as tapestry;
pub use peercache_workload as workload;

pub use peercache_core::{Candidate, ChordProblem, PastryProblem, SelectError, Selection};
pub use peercache_freq::{FrequencyEstimator, FrequencySnapshot};
pub use peercache_id::{Id, IdSpace};
