//! Workspace-level integration tests: the full experiment pipeline at
//! quick scale, exercising every crate through the facade.

use peercache::sim::{fig3, fig4, fig5, fig6, FigureRow, Scale};

fn quick() -> Scale {
    let mut s = Scale::quick();
    s.queries = 3_000;
    s.churn_duration = 400.0;
    s.churn_warmup = 100.0;
    s
}

fn assert_rows_sane(rows: &[FigureRow], figure: &str) {
    assert!(!rows.is_empty(), "{figure} produced no rows");
    for r in rows {
        assert_eq!(r.figure, figure);
        assert!(r.avg_hops_aware > 0.0, "{figure}: aware hops {r:?}");
        assert!(r.avg_hops_oblivious > 0.0);
        assert!(r.success_rate_aware > 0.9, "{figure}: {r:?}");
        if r.mode == "stable" {
            assert_eq!(r.success_rate_aware, 1.0, "stable mode never fails");
            assert!(
                r.avg_hops_core_only
                    .expect("stable rows record core-only hops")
                    >= r.avg_hops_aware,
                "{figure}: core-only must not beat aware: {r:?}"
            );
        }
    }
}

#[test]
fn fig3_rows_have_the_papers_shape() {
    let rows = fig3(&quick(), 11);
    assert_rows_sane(&rows, "fig3");
    assert_eq!(rows.len(), 8, "4 node counts × 2 alphas");
    // Frequency-aware wins every configuration.
    for r in &rows {
        assert!(r.reduction_pct > 0.0, "aware must beat oblivious: {r:?}");
    }
    // Higher α wins at every n (hashing flattens α < 1, §VI-B).
    for pair in rows.chunks(2) {
        let (hot, mild) = (&pair[0], &pair[1]);
        assert_eq!(hot.n, mild.n);
        assert!(hot.alpha > mild.alpha);
        assert!(
            hot.reduction_pct > mild.reduction_pct,
            "α=1.2 should beat α=0.91 at n={}: {:.1} vs {:.1}",
            hot.n,
            hot.reduction_pct,
            mild.reduction_pct
        );
    }
}

#[test]
fn fig4_rows_grow_with_k() {
    let rows = fig4(&quick(), 12);
    assert_rows_sane(&rows, "fig4");
    assert_eq!(rows.len(), 6, "3 k-factors × 2 alphas");
    // The Figure-4 artifact: under locality-aware routing the aware
    // advantage does not collapse as k grows; absolute aware hops keep
    // improving.
    let alpha12: Vec<&FigureRow> = rows
        .iter()
        .filter(|r| (r.alpha - 1.2).abs() < 1e-9)
        .collect();
    assert!(alpha12.windows(2).all(|w| w[0].k < w[1].k));
    assert!(
        alpha12.last().unwrap().avg_hops_aware < alpha12[0].avg_hops_aware,
        "more pointers keep helping the aware scheme"
    );
}

#[test]
fn fig5_rows_cover_both_modes() {
    let rows = fig5(&quick(), 13);
    assert_rows_sane(&rows, "fig5");
    assert_eq!(rows.len(), 8, "4 node counts × 2 modes");
    let stable: Vec<&FigureRow> = rows.iter().filter(|r| r.mode == "stable").collect();
    let churn: Vec<&FigureRow> = rows.iter().filter(|r| r.mode == "churn").collect();
    assert_eq!(stable.len(), 4);
    assert_eq!(churn.len(), 4);
    for r in &stable {
        assert!(r.reduction_pct > 0.0, "stable aware must win: {r:?}");
    }
    // Churn reduces but does not erase the benefit at the larger sizes.
    let last = churn.last().unwrap();
    assert!(
        last.reduction_pct > -5.0,
        "churn-mode aware should not lose badly: {last:?}"
    );
    // Stable beats churn at equal n (the paper's consistent gap).
    for (s, c) in stable.iter().zip(&churn) {
        assert_eq!(s.n, c.n);
        assert!(
            s.reduction_pct > c.reduction_pct,
            "stable should beat churn at n={}: {:.1} vs {:.1}",
            s.n,
            s.reduction_pct,
            c.reduction_pct
        );
    }
}

#[test]
fn fig6_rows_cover_three_k_factors() {
    let rows = fig6(&quick(), 14);
    assert_rows_sane(&rows, "fig6");
    assert_eq!(rows.len(), 6, "3 k-factors × 2 modes");
    for r in rows.iter().filter(|r| r.mode == "stable") {
        assert!(r.reduction_pct > 0.0);
    }
}

#[test]
fn rows_serialise_to_json() {
    let rows = fig6(&quick(), 15);
    let json = serde_json::to_string(&rows).expect("rows serialise");
    assert!(json.contains("\"figure\":\"fig6\""));
    assert!(json.contains("reduction_pct"));
}

#[test]
fn node_runtime_reproduces_the_sim_through_the_facade() {
    use peercache::faults::FaultPlan;
    use peercache::node::NodeRuntime;
    use peercache::sim::{run_stable, OverlayKind, RuntimeFixture, StableConfig};

    // The event-loop runtime and the monolithic driver must agree
    // bit-for-bit when both are reached the way a downstream user
    // reaches them: through the facade crate.
    for kind in [OverlayKind::Chord, OverlayKind::SkipGraph] {
        let mut config = StableConfig::paper_defaults(kind, 64, 21);
        config.queries = 2_000;
        let reference = run_stable(&config);
        let fixture = RuntimeFixture::build(&config);
        let mut runtime = NodeRuntime::new(fixture.overlay(), FaultPlan::transparent(config.seed));
        runtime.install_aux(fixture.aware_table());
        for (origin, key) in fixture.queries() {
            runtime.submit(origin, key);
        }
        runtime.run();
        assert_eq!(
            runtime.query_metrics(),
            reference.aware,
            "{kind:?}: runtime and sim disagree"
        );
        assert_eq!(runtime.joined().len(), config.nodes);
    }
}
