//! The public-API workflow a downstream user follows, end to end, on both
//! overlays: observe → snapshot → select → install → route.

use peercache::chord::{ChordConfig, ChordNetwork};
use peercache::freq::{ExactCounter, SpaceSaving};
use peercache::pastry::{PastryConfig, PastryNetwork, RoutingMode};
use peercache::select::baseline::chord_oblivious;
use peercache::select::chord::{select_fast, select_naive};
use peercache::select::exhaustive::chord_exhaustive;
use peercache::select::pastry::{select_greedy, PastryOptimizer};
use peercache::workload::{random_ids, ItemCatalog, NodeWorkload, Ranking, Zipf};
use peercache::{
    Candidate, ChordProblem, FrequencyEstimator, FrequencySnapshot, Id, IdSpace, PastryProblem,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn chord_workflow_improves_measured_hops() {
    let space = IdSpace::paper();
    let mut rng = StdRng::seed_from_u64(1);
    let nodes = random_ids(space, 96, &mut rng);
    let mut net = ChordNetwork::build(ChordConfig::new(space), &nodes);
    let me = nodes[0];

    let catalog = ItemCatalog::random(space, 48, &mut rng);
    let workload = NodeWorkload::new(Zipf::new(48, 1.2).unwrap(), Ranking::identity(48));

    // Observe with BOTH estimators; Space-Saving must agree on the heavy
    // hitters with a fraction of the state.
    let mut exact = ExactCounter::new();
    let mut sketch = SpaceSaving::new(16);
    let mut hops_before = 0u64;
    for _ in 0..4_000 {
        let key = catalog.key(workload.sample_item(&mut rng));
        let res = net.lookup(me, key).unwrap();
        assert!(res.is_success());
        hops_before += u64::from(res.hops);
        let owner = *res.path.last().unwrap();
        exact.observe(owner);
        sketch.observe(owner);
    }

    let core = net.node(me).unwrap().core_neighbors();
    let build = |snapshot: FrequencySnapshot| {
        let cands: Vec<Candidate> = snapshot
            .without(core.iter().copied().chain([me]))
            .iter()
            .map(|(id, w)| Candidate::new(id, w))
            .collect();
        ChordProblem::new(space, me, core.clone(), cands, 7).unwrap()
    };
    let from_exact = select_fast(&build(exact.snapshot())).unwrap();
    let from_sketch = select_fast(&build(sketch.snapshot())).unwrap();
    // The sketch tracks 16 of ~48 owners yet the chosen sets overlap
    // heavily (heavy hitters are guaranteed monitored).
    let overlap = from_exact
        .aux
        .iter()
        .filter(|id| from_sketch.aux.contains(id))
        .count();
    assert!(
        overlap * 2 >= from_exact.aux.len(),
        "sketch-driven selection diverged: {overlap}/{} shared",
        from_exact.aux.len()
    );

    net.set_aux(me, from_exact.aux.clone()).unwrap();
    let mut rng2 = StdRng::seed_from_u64(2);
    let mut hops_after = 0u64;
    for _ in 0..4_000 {
        let key = catalog.key(workload.sample_item(&mut rng2));
        hops_after += u64::from(net.lookup(me, key).unwrap().hops);
    }
    assert!(
        hops_after < hops_before,
        "hops {hops_after} must improve on {hops_before}"
    );
}

#[test]
fn pastry_workflow_with_incremental_reoptimisation() {
    let space = IdSpace::paper();
    let mut rng = StdRng::seed_from_u64(3);
    let nodes = random_ids(space, 64, &mut rng);
    let config = PastryConfig::new(space, 1).with_mode(RoutingMode::GreedyPrefix);
    let mut net = PastryNetwork::build(config, &nodes, &mut rng);
    let me = nodes[0];

    let core = net.node(me).unwrap().core_neighbors();
    let candidates: Vec<Candidate> = nodes[1..]
        .iter()
        .filter(|id| !core.contains(id))
        .enumerate()
        .map(|(i, &id)| Candidate::new(id, 1.0 + (i % 5) as f64))
        .collect();
    let problem = PastryProblem::new(space, 1, me, core, candidates, 6).unwrap();

    // Warm optimiser; popularity shifts arrive one at a time.
    let mut opt = PastryOptimizer::new(&problem).unwrap();
    let first = opt.select().unwrap();
    net.set_aux(me, first.aux.clone()).unwrap();

    let hot = problem.candidates[7].id;
    opt.update_weight(hot, 500.0).unwrap();
    let second = opt.select().unwrap();
    assert!(second.aux.contains(&hot), "spiking peer must be selected");
    net.set_aux(me, second.aux.clone()).unwrap();
    let res = net.route(me, hot).unwrap();
    assert!(res.is_success());
    assert_eq!(res.hops, 1, "direct pointer");

    // The incremental state matches a from-scratch solve.
    let mut shifted = problem.clone();
    shifted
        .candidates
        .iter_mut()
        .find(|c| c.id == hot)
        .unwrap()
        .weight = 500.0;
    let scratch = select_greedy(&shifted).unwrap();
    assert!((second.cost - scratch.cost).abs() < 1e-9);
}

#[test]
fn all_solvers_agree_on_a_shared_instance() {
    let space = IdSpace::new(10).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let ids = random_ids(space, 14, &mut rng);
    let problem = ChordProblem::new(
        space,
        ids[0],
        vec![ids[1], ids[2]],
        ids[3..]
            .iter()
            .enumerate()
            .map(|(i, &id)| Candidate::new(id, (i * i % 17) as f64 + 1.0))
            .collect(),
        3,
    )
    .unwrap();
    let fast = select_fast(&problem).unwrap();
    let naive = select_naive(&problem).unwrap();
    let best = chord_exhaustive(&problem).unwrap();
    assert!((fast.cost - best.cost).abs() < 1e-9);
    assert!((naive.cost - best.cost).abs() < 1e-9);

    let mut rng = StdRng::seed_from_u64(6);
    let oblivious = chord_oblivious(&problem, &mut rng);
    assert!(best.cost <= oblivious.cost + 1e-9);
}

#[test]
fn facade_reexports_are_usable() {
    // Types reachable from the crate root without touching sub-crates.
    let space: IdSpace = IdSpace::new(8).unwrap();
    let id: Id = Id::new(42);
    assert!(space.contains(id));
    let snapshot: FrequencySnapshot = FrequencySnapshot::from_counts(vec![(Id::new(1), 3u64)]);
    assert_eq!(snapshot.len(), 1);
    let err = ChordProblem::new(space, id, vec![id], vec![], 1).unwrap_err();
    assert!(matches!(err, peercache::SelectError::InvalidProblem(_)));
}

#[test]
fn node_lifecycle_workflow_persists_and_reconnects() {
    use peercache::faults::{FaultConfig, FaultPlan};
    use peercache::node::{NodeRuntime, PeerStore, StoreConfig};
    use peercache::sim::{OverlayKind, RuntimeFixture, StableConfig};

    // The full downstream lifecycle: build a world, host it in the
    // runtime, let lookups feed the owner's peer store, persist it,
    // reboot, and reconnect in reliability order.
    let mut config = StableConfig::paper_defaults(OverlayKind::Chord, 48, 33);
    config.queries = 1_500;
    let fixture = RuntimeFixture::build(&config);
    let faults = FaultConfig {
        unresponsive_rate: 0.15,
        loss_rate: 0.05,
        ..FaultConfig::default()
    };
    let owner = fixture.node_ids()[0];

    let mut runtime = NodeRuntime::new(fixture.overlay(), FaultPlan::new(config.seed, &faults));
    runtime.install_aux(fixture.aware_table());
    runtime.attach_store(owner, PeerStore::new(StoreConfig::default()));
    for (origin, key) in fixture.queries() {
        runtime.submit(origin, key);
    }
    runtime.run();
    let (_, store) = runtime.detach_store().expect("store attached");
    assert!(!store.is_empty(), "lookup traffic must populate the store");
    assert!(
        store.entries().iter().any(|e| e.successes + e.failures > 0),
        "scores must be fed by RouteTrace outcomes"
    );

    // Persist → reboot → reconnect. The reloaded store is identical and
    // reconnection walks it by score (golden-pinned in the node crate).
    let dir = std::env::temp_dir().join("peercache-api-workflow");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("peers.jsonl");
    store.save(&path).expect("save");
    let reloaded = PeerStore::load(&path, StoreConfig::default());
    assert_eq!(reloaded, store);

    let mut reboot = NodeRuntime::new(fixture.overlay(), FaultPlan::new(config.seed, &faults));
    reboot.attach_store(owner, reloaded);
    let connected = reboot.reconnect();
    assert!(!connected.is_empty(), "a healthy overlay reconnects peers");
    let (_, after) = reboot.detach_store().expect("store attached");
    assert!(after.len() >= store.len());
    std::fs::remove_file(&path).expect("cleanup");
}
