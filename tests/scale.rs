//! Large-scale smoke tests, `#[ignore]`d by default.
//! Run with `cargo test --release -- --ignored`.

use std::time::Instant;

use peercache::chord::{ChordConfig, ChordNetwork};
use peercache::select::chord::select_fast;
use peercache::select::pastry::select_greedy;
use peercache::workload::{random_ids, Zipf};
use peercache::{Candidate, ChordProblem, Id, IdSpace, PastryProblem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn big_candidates(n: usize, seed: u64) -> (IdSpace, Id, Vec<Id>, Vec<Candidate>) {
    let space = IdSpace::paper();
    let mut rng = StdRng::seed_from_u64(seed);
    let ids = random_ids(space, n + 33, &mut rng);
    let source = ids[0];
    let core = ids[1..33].to_vec();
    let zipf = Zipf::new(n, 1.1).expect("valid Zipf");
    let candidates = ids[33..]
        .iter()
        .enumerate()
        .map(|(i, &id)| Candidate::new(id, zipf.rank_probability(i) * 1e7))
        .collect();
    (space, source, core, candidates)
}

#[test]
#[ignore = "large-scale; run with --ignored"]
fn chord_fast_handles_hundred_thousand_candidates() {
    let n = 100_000;
    let (space, source, core, candidates) = big_candidates(n, 1);
    let problem = ChordProblem::new(space, source, core, candidates, 17).unwrap();
    let start = Instant::now();
    let sel = select_fast(&problem).unwrap();
    let elapsed = start.elapsed();
    assert_eq!(sel.aux.len(), 17);
    assert!(sel.cost.is_finite());
    // O(n·(b + k·log n)·log n) should stay comfortably interactive.
    assert!(
        elapsed.as_secs() < 60,
        "fast solver took {elapsed:?} for n = {n}"
    );
    println!("chord fast, n = {n}: {elapsed:?}");
}

#[test]
#[ignore = "large-scale; run with --ignored"]
fn pastry_greedy_handles_hundred_thousand_candidates() {
    let n = 100_000;
    let (space, source, core, candidates) = big_candidates(n, 2);
    let problem = PastryProblem::new(space, 1, source, core, candidates, 17).unwrap();
    let start = Instant::now();
    let sel = select_greedy(&problem).unwrap();
    let elapsed = start.elapsed();
    assert_eq!(sel.aux.len(), 17);
    assert!(
        elapsed.as_secs() < 60,
        "greedy solver took {elapsed:?} for n = {n}"
    );
    println!("pastry greedy, n = {n}: {elapsed:?}");
}

#[test]
#[ignore = "large-scale; run with --ignored"]
fn ten_thousand_node_ring_routes_correctly() {
    let space = IdSpace::paper();
    let mut rng = StdRng::seed_from_u64(3);
    let ids = random_ids(space, 10_000, &mut rng);
    let start = Instant::now();
    let mut net = ChordNetwork::build(ChordConfig::new(space), &ids);
    let built = start.elapsed();
    let mut max_hops = 0;
    for _ in 0..5_000 {
        let from = ids[rng.gen_range(0..ids.len())];
        let key = Id::new(u128::from(rng.gen::<u32>()));
        let res = net.lookup(from, key).unwrap();
        assert!(res.is_success());
        max_hops = max_hops.max(res.hops);
    }
    // log2(10_000) ≈ 13.3; allow generous slack.
    assert!(max_hops <= 26, "max hops {max_hops}");
    println!("10k ring built in {built:?}, max hops {max_hops}");
}
