//! Quickstart: the full peer-caching loop on a small Chord ring.
//!
//! 1. Build a 128-node Chord overlay.
//! 2. Stream Zipf-skewed queries from one node and track which peers
//!    answered them (the access frequencies of §III).
//! 3. Run the paper's optimal auxiliary-neighbor selection.
//! 4. Install the pointers and measure the hop improvement.
//!
//! Run with `cargo run --release --example quickstart`.

// Demonstration code: unwrap keeps the walkthrough focused.
#![allow(clippy::unwrap_used)]

use peercache::chord::{ChordConfig, ChordNetwork};
use peercache::freq::ExactCounter;
use peercache::select::chord::select_fast;
use peercache::sim::reduction_pct;
use peercache::workload::{random_ids, ItemCatalog, NodeWorkload, Ranking, Zipf};
use peercache::{Candidate, ChordProblem, FrequencyEstimator, Id, IdSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let space = IdSpace::paper(); // 32-bit ids, as in the paper
    let mut rng = StdRng::seed_from_u64(2008);

    // 1. A stable 128-node ring with perfect core state.
    let nodes = random_ids(space, 128, &mut rng);
    let mut net = ChordNetwork::build(ChordConfig::new(space), &nodes);
    let me = nodes[0];
    println!("ring of {} nodes; our node is {me}", net.len());

    // 2. Observe 5 000 Zipf(1.2) queries over a 64-item catalog.
    let catalog = ItemCatalog::random(space, 64, &mut rng);
    let workload = NodeWorkload::new(Zipf::new(64, 1.2).unwrap(), Ranking::identity(64));
    let mut counter = ExactCounter::new();
    let mut hops_before = 0u64;
    let queries = 5_000;
    for _ in 0..queries {
        let key = catalog.key(workload.sample_item(&mut rng));
        let result = net.lookup(me, key).expect("we are live");
        assert!(result.is_success(), "stable rings never fail lookups");
        hops_before += u64::from(result.hops);
        counter.observe(*result.path.last().unwrap());
    }
    println!(
        "observed {} distinct answering peers over {queries} queries",
        counter.distinct_peers()
    );

    // 3. Choose the k = log₂ n = 7 optimal auxiliary neighbors.
    let k = 7;
    let core = net.node(me).unwrap().core_neighbors();
    let snapshot = counter
        .snapshot()
        .without(core.iter().copied().chain(std::iter::once(me)));
    let candidates: Vec<Candidate> = snapshot
        .iter()
        .map(|(id, w)| Candidate::new(id, w))
        .collect();
    let problem = ChordProblem::new(space, me, core, candidates, k).unwrap();
    let selection = select_fast(&problem).unwrap();
    println!(
        "selected {} auxiliary neighbors (model cost {:.0}):",
        selection.aux.len(),
        selection.cost
    );
    for aux in &selection.aux {
        println!("  -> {aux}  (weight {:.0})", snapshot.weight_of(*aux));
    }

    // 4. Install and replay the same query mix.
    net.set_aux(me, selection.aux.clone()).unwrap();
    let mut rng = StdRng::seed_from_u64(2008 + 1);
    let mut hops_after = 0u64;
    for _ in 0..queries {
        let key = catalog.key(workload.sample_item(&mut rng));
        let result = net.lookup(me, key).expect("we are live");
        hops_after += u64::from(result.hops);
    }
    let before = hops_before as f64 / f64::from(queries);
    let after = hops_after as f64 / f64::from(queries);
    println!("average hops before: {before:.3}");
    println!("average hops after:  {after:.3}");
    println!(
        "reduction: {:.1}% with {k} cached pointers",
        reduction_pct(after, before)
    );
    assert!(after < before, "auxiliary neighbors must help");

    // Bonus: would one MORE pointer have helped? Ask the optimiser.
    let mut bigger = problem.clone();
    bigger.k = k + 1;
    let next = select_fast(&bigger).unwrap();
    let gained: Vec<Id> = next
        .aux
        .iter()
        .copied()
        .filter(|id| !selection.aux.contains(id))
        .collect();
    println!(
        "the (k+1)-th pointer would be {:?} (model cost {:.0} → {:.0})",
        gained, selection.cost, next.cost
    );
}
