//! P2P DNS with mobile IP — the paper's motivating application (§I).
//!
//! DNS servers form a Chord ring; domain names are the items. Mobile
//! hosts change IP address frequently, so the *records* churn while the
//! *servers* stay up — exactly the regime where item caching/replication
//! goes stale but cached peer pointers stay valid.
//!
//! This example contrasts, for one busy resolver:
//! * **peer caching** (this paper): pointers to the hot name servers —
//!   lookups shorten AND every answer is authoritative (fresh);
//! * **item caching with TTL**: answers are 1-hop when cached, but a
//!   fraction is stale whenever the record changed within the TTL.
//!
//! Run with `cargo run --release --example p2p_dns`.

// Demonstration code: unwrap keeps the walkthrough focused.
#![allow(clippy::unwrap_used)]

use peercache::chord::{ChordConfig, ChordNetwork};
use peercache::freq::ExactCounter;
use peercache::select::chord::select_fast;
use peercache::workload::{random_ids, ItemCatalog, NodeWorkload, Ranking, Zipf};
use peercache::{Candidate, ChordProblem, FrequencyEstimator, IdSpace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

const SERVERS: usize = 256;
const DOMAINS: usize = 128;
const QUERIES: usize = 20_000;
/// Mean seconds between IP-address changes of a mobile host's record.
const RECORD_CHANGE_MEAN_S: f64 = 120.0;
/// TTL an item cache would use for resolved records.
const ITEM_TTL_S: f64 = 60.0;
/// Resolver query rate.
const QUERY_RATE_HZ: f64 = 20.0;

fn main() {
    let space = IdSpace::paper();
    let mut rng = StdRng::seed_from_u64(53);

    // The name-server ring and the domain catalog.
    let servers = random_ids(space, SERVERS, &mut rng);
    let mut net = ChordNetwork::build(ChordConfig::new(space), &servers);
    let domains = ItemCatalog::random(space, DOMAINS, &mut rng);
    let workload = NodeWorkload::new(Zipf::new(DOMAINS, 1.2).unwrap(), Ranking::identity(DOMAINS));
    let resolver = servers[0];

    // Phase 1 — observe traffic, then cache pointers to hot name servers.
    let mut counter = ExactCounter::new();
    for _ in 0..QUERIES / 4 {
        let key = domains.key(workload.sample_item(&mut rng));
        let res = net.lookup(resolver, key).unwrap();
        counter.observe(*res.path.last().unwrap());
    }
    let core = net.node(resolver).unwrap().core_neighbors();
    let snapshot = counter
        .snapshot()
        .without(core.iter().copied().chain([resolver]));
    let problem = ChordProblem::new(
        space,
        resolver,
        core,
        snapshot
            .iter()
            .map(|(id, w)| Candidate::new(id, w))
            .collect(),
        8,
    )
    .unwrap();
    let selection = select_fast(&problem).unwrap();
    println!(
        "resolver caches {} pointers to hot name servers",
        selection.aux.len()
    );

    // Phase 2 — measure. Each record mutates as a Poisson process whose
    // next event is pre-scheduled; the item cache serves stale data when
    // the record changed after caching and the TTL has not yet expired.
    let run = |net: &mut ChordNetwork, use_aux: bool, rng: &mut StdRng| {
        if use_aux {
            net.set_aux(resolver, selection.aux.clone()).unwrap();
        } else {
            net.set_aux(resolver, vec![]).unwrap();
        }
        let mut hops = 0u64;
        for _ in 0..QUERIES {
            let item = workload.sample_item(rng);
            let res = net.lookup(resolver, domains.key(item)).unwrap();
            hops += u64::from(res.hops);
        }
        hops as f64 / QUERIES as f64
    };

    let mut rng_a = StdRng::seed_from_u64(99);
    let hops_plain = run(&mut net, false, &mut rng_a);
    let mut rng_b = StdRng::seed_from_u64(99);
    let hops_cached = run(&mut net, true, &mut rng_b);

    // Item-cache staleness under the same traffic: per-record Poisson
    // mutation with a scheduled next-change time (no re-rolling — the
    // exponential clock ticks once per actual change).
    let mut rng_c = StdRng::seed_from_u64(99);
    let mut last_change: Vec<f64> = vec![f64::NEG_INFINITY; DOMAINS];
    let mut next_change: Vec<f64> = (0..DOMAINS)
        .map(|_| RECORD_CHANGE_MEAN_S * -(1.0 - rng_c.gen::<f64>()).ln())
        .collect();
    let mut item_cache: HashMap<usize, (f64, f64)> = HashMap::new(); // item -> (cached_at, version)
    let mut t = 0.0f64;
    let (mut answers, mut stale, mut cache_hits) = (0u64, 0u64, 0u64);
    for _ in 0..QUERIES {
        t += -(1.0 / QUERY_RATE_HZ) * (1.0 - rng_c.gen::<f64>()).ln();
        let item = workload.sample_item(&mut rng_c);
        while next_change[item] <= t {
            last_change[item] = next_change[item];
            next_change[item] += RECORD_CHANGE_MEAN_S * -(1.0 - rng_c.gen::<f64>()).ln();
        }
        answers += 1;
        match item_cache.get(&item) {
            Some(&(cached_at, version)) if t - cached_at < ITEM_TTL_S => {
                cache_hits += 1;
                if last_change[item] > version {
                    stale += 1; // record changed since we cached it
                }
            }
            _ => {
                item_cache.insert(item, (t, last_change[item]));
            }
        }
    }

    println!("\n--- results over {QUERIES} resolutions ---");
    println!("no caching:            {hops_plain:.3} hops/query, 0.0% stale answers");
    println!(
        "peer caching (paper):  {hops_cached:.3} hops/query, 0.0% stale answers ({:.1}% fewer hops)",
        (hops_plain - hops_cached) / hops_plain * 100.0
    );
    println!(
        "item caching, TTL {}s: ~{:.3} hops/query, {:.1}% of answers STALE ({} of {} cache hits)",
        ITEM_TTL_S,
        hops_plain * (1.0 - cache_hits as f64 / answers as f64),
        stale as f64 / answers as f64 * 100.0,
        stale,
        cache_hits
    );
    println!(
        "\npeer caching keeps every answer authoritative because the pointer \
         targets (servers) are stable\nwhile the records (mobile IPs) churn — \
         the paper's §I argument for DNS over P2P."
    );
    assert!(hops_cached < hops_plain);
    assert!(
        stale > 0,
        "the TTL cache must show staleness in this regime"
    );
}
