//! Multiple QoS classes (paper contribution 2, §IV-D / §V-C).
//!
//! "QoS-sensitive applications such as VoIP, IPTV, and video on demand …
//! require certain queries to be answered within a fixed time period and
//! hence within a certain number of hops."
//!
//! A media gateway serves three traffic classes against the same Chord
//! ring:
//! * **signalling** (VoIP session setup): must resolve in ≤ 2 hops,
//! * **streaming** (IPTV channel lookup): must resolve in ≤ 3 hops,
//! * **bulk** (background sync): best effort.
//!
//! The example shows that (1) the unconstrained optimum violates the
//! bounds, (2) the QoS-aware selection meets every bound at slightly
//! higher average cost, and (3) infeasible budgets are reported exactly.
//!
//! Run with `cargo run --release --example qos_classes`.

// Demonstration code: unwrap keeps the walkthrough focused.
#![allow(clippy::unwrap_used)]

use peercache::select::chord::{select_fast, select_naive};
use peercache::select::cost::{chord_qos_satisfied, chord_set_distance};
use peercache::workload::random_ids;
use peercache::{Candidate, ChordProblem, Id, IdSpace, SelectError};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Copy, Clone, Debug, PartialEq)]
enum Class {
    Signalling, // ≤ 2 hops
    Streaming,  // ≤ 3 hops
    Bulk,       // unconstrained
}

impl Class {
    fn max_hops(self) -> Option<u32> {
        match self {
            Class::Signalling => Some(2),
            Class::Streaming => Some(3),
            Class::Bulk => None,
        }
    }
}

fn main() {
    let space = IdSpace::paper();
    let mut rng = StdRng::seed_from_u64(17);
    let ids = random_ids(space, 200, &mut rng);
    let me = ids[0];
    let core: Vec<Id> = ids[1..9].to_vec();

    // 60 observed peers; a few carry QoS classes, the rest are bulk.
    let classes = |i: usize| match i % 20 {
        0 => Class::Signalling,
        1 | 2 => Class::Streaming,
        _ => Class::Bulk,
    };
    // Bulk weights dominate, so an unconstrained optimiser ignores the
    // small QoS flows entirely.
    let weight = |i: usize, class: Class| match class {
        Class::Signalling | Class::Streaming => 1.0,
        Class::Bulk => 50.0 + (i % 7) as f64 * 10.0,
    };
    let candidates: Vec<Candidate> = ids[9..69]
        .iter()
        .enumerate()
        .map(|(i, &id)| {
            let class = classes(i);
            Candidate {
                id,
                weight: weight(i, class),
                max_hops: class.max_hops(),
            }
        })
        .collect();
    let constrained = candidates.iter().filter(|c| c.max_hops.is_some()).count();
    println!(
        "{} candidates, {} with QoS bounds (signalling ≤2 hops, streaming ≤3)",
        candidates.len(),
        constrained
    );

    // 1. Unconstrained optimum: strip the bounds.
    let unconstrained: Vec<Candidate> = candidates
        .iter()
        .map(|c| Candidate::new(c.id, c.weight))
        .collect();
    let k = 12;
    let plain_problem = ChordProblem::new(space, me, core.clone(), unconstrained, k).unwrap();
    let plain = select_fast(&plain_problem).unwrap();
    let qos_problem = ChordProblem::new(space, me, core.clone(), candidates.clone(), k).unwrap();
    let plain_ok = chord_qos_satisfied(&qos_problem, &plain.aux);
    println!(
        "\nunconstrained optimum: cost {:.0}, meets all bounds: {plain_ok}",
        plain.cost
    );
    assert!(!plain_ok, "bulk-dominated optimum should violate a bound");

    // 2. QoS-aware selection (both solvers agree).
    let qos = select_fast(&qos_problem).unwrap();
    let qos_naive = select_naive(&qos_problem).unwrap();
    assert!((qos.cost - qos_naive.cost).abs() < 1e-6);
    assert!(chord_qos_satisfied(&qos_problem, &qos.aux));
    println!(
        "QoS-aware optimum:     cost {:.0} (+{:.1}% vs unconstrained), meets all bounds: true",
        qos.cost,
        (qos.cost - plain.cost) / plain.cost * 100.0
    );
    for cand in candidates.iter().filter(|c| c.max_hops.is_some()) {
        let mut neighbors = core.clone();
        neighbors.extend_from_slice(&qos.aux);
        let hops = 1 + chord_set_distance(space, me, cand.id, &neighbors);
        println!(
            "  class peer {}: bound {} hops, guaranteed {} hops",
            cand.id,
            cand.max_hops.unwrap(),
            hops
        );
        assert!(hops <= cand.max_hops.unwrap());
    }

    // 3. Starve the budget: the error reports the minimum feasible k.
    let tight = ChordProblem::new(
        space,
        me,
        vec![],
        candidates
            .iter()
            .map(|c| Candidate {
                id: c.id,
                weight: c.weight,
                max_hops: Some(1), // everyone demands a direct pointer
            })
            .take(10)
            .collect(),
        4,
    )
    .unwrap();
    match select_fast(&tight) {
        Err(SelectError::QosInfeasible { required, k }) => {
            println!(
                "\nwith every peer demanding 1 hop and k = {k}: infeasible, needs ≥ {required} pointers"
            );
        }
        other => panic!("expected infeasibility, got {other:?}"),
    }
}
