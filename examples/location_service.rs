//! A location service under peer churn — the paper's second motivating
//! application ("name services in mobile environments or location
//! services", §I, §VII).
//!
//! Regional gateways form a Chord ring storing device → location records.
//! Gateways restart occasionally (churn), and each region queries a
//! different hot set of devices (distinct popularity rankings, as in the
//! paper's Chord evaluation). Every gateway keeps learning from the
//! queries it routes and re-optimises its auxiliary pointers periodically
//! with the incremental machinery of the library.
//!
//! Run with `cargo run --release --example location_service`.

// Demonstration code: unwrap keeps the walkthrough focused.
#![allow(clippy::unwrap_used)]

use peercache::pastry::RoutingMode;
use peercache::sim::{run_churn_once, ChurnConfig, OverlayKind, RankingMode, Strategy};

fn main() {
    // 192 gateways, 64 hot devices, 5 regional popularity profiles; a
    // gateway stays up ~15 minutes between restarts. Queries at 8/s.
    let mut config = ChurnConfig::paper_defaults(192, 7);
    config.kind = OverlayKind::Chord;
    config.items = 64;
    config.ranking = RankingMode::Pool(5);
    config.mean_lifetime = 900.0;
    config.query_rate = 8.0;
    config.duration = 3600.0;
    config.warmup = 900.0;
    config.k = 8;

    println!(
        "location service: {} gateways, {} devices, churn mean lifetime {}s",
        config.nodes, config.items, config.mean_lifetime
    );
    println!("running one simulated hour per strategy...\n");

    let aware = run_churn_once(&config, Strategy::Aware);
    let oblivious = run_churn_once(&config, Strategy::Oblivious);

    let fmt = |m: &peercache::sim::QueryMetrics| {
        format!(
            "{:.3} hops/lookup, {:.1}% success, {} timeouts on dead peers",
            m.avg_hops(),
            m.success_rate() * 100.0,
            m.failed_probes
        )
    };
    println!("frequency-aware pointers:    {}", fmt(&aware));
    println!("frequency-oblivious random:  {}", fmt(&oblivious));
    println!(
        "\nhop reduction from optimising for regional popularity: {:.1}%",
        (oblivious.avg_hops() - aware.avg_hops()) / oblivious.avg_hops() * 100.0
    );
    println!(
        "median hops aware/oblivious: {} / {}",
        aware.hop_quantile(0.5).unwrap(),
        oblivious.hop_quantile(0.5).unwrap()
    );
    assert!(aware.avg_hops() <= oblivious.avg_hops());

    // The same comparison on a Pastry overlay of gateways (stable mode is
    // exercised in the quickstart; here we reuse the churn driver to show
    // the API is overlay-agnostic).
    let mut pastry = config.clone();
    pastry.kind = OverlayKind::Pastry {
        digit_bits: 4, // base-16 digits, FreePastry style
        mode: RoutingMode::LocalityAware,
    };
    pastry.duration = 1800.0;
    pastry.warmup = 600.0;
    let pastry_aware = run_churn_once(&pastry, Strategy::Aware);
    println!(
        "\nsame service on base-16 Pastry gateways: {:.3} hops/lookup, {:.1}% success",
        pastry_aware.avg_hops(),
        pastry_aware.success_rate() * 100.0
    );
}
