//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors a small, dependency-free subset of the `rand` 0.8
//! API surface that the peercache crates actually use:
//!
//! - [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`]
//! - [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`]
//! - [`rngs::StdRng`] and [`rngs::SmallRng`]
//! - [`seq::SliceRandom::shuffle`] and [`seq::SliceRandom::choose`]
//!
//! The generator is xoshiro256** seeded via SplitMix64 — statistically strong
//! for simulation workloads and fully deterministic for a given seed, which is
//! what the reproduction experiments require. It is **not** the same stream as
//! upstream `rand`'s StdRng (ChaCha12), so absolute experiment numbers may
//! differ from runs against crates.io rand, but all seeded runs remain
//! self-consistent and reproducible.
#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Return the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Return the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

/// A generator that can be constructed from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for the vendored generators).
    type Seed: AsMut<[u8]> + Default;

    /// Build a generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from the generator's raw output,
/// mirroring `rand`'s `Standard` distribution.
pub trait StandardSample {
    /// Draw one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts, mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                // Multiply-shift rejection-free mapping is fine for span ≪ 2^64.
                let v = u128::from(rng.next_u64()) % span;
                self.start + v as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return StandardSample::sample(rng);
                }
                let span = (hi - lo) as u128 + 1;
                let v = u128::from(rng.next_u64()) % span;
                lo + v as $t
            }
        }
    )*};
}

impl_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<u128> for core::ops::Range<u128> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end - self.start;
        self.start + sample_u128_below(rng, span)
    }
}

impl SampleRange<u128> for core::ops::RangeInclusive<u128> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        if lo == 0 && hi == u128::MAX {
            return StandardSample::sample(rng);
        }
        lo + sample_u128_below(rng, hi - lo + 1)
    }
}

fn sample_u128_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    // Modulo bias is negligible for the simulation spans used here, and a
    // single widening draw keeps the stream deterministic and cheap.
    u128::sample(rng) % span
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = StandardSample::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u: f64 = StandardSample::sample(rng);
        lo + u * (hi - lo)
    }
}

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let u: f64 = self.gen();
        u < p
    }

    /// Fill `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the workhorse generator for all vendored RNGs.
    #[derive(Clone, Debug)]
    pub struct Xoshiro256 {
        s: [u64; 4],
    }

    impl Xoshiro256 {
        fn next(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn from_bytes(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point for xoshiro; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    /// Stand-in for `rand::rngs::StdRng` (deterministic, seedable).
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            Self(Xoshiro256::from_bytes(seed))
        }
    }

    /// Stand-in for `rand::rngs::SmallRng` (same engine as [`StdRng`] here).
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            Self(Xoshiro256::from_bytes(seed))
        }
    }
}

/// Sequence-related helpers (subset of `rand::seq`).
pub mod seq {
    use super::RngCore;

    /// Random operations on slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick one element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

/// Commonly imported names, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::StandardSample;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let w = rng.gen_range(0u128..(1u128 << 100));
            assert!(w < (1u128 << 100));
            let c = rng.gen_range(5u8..=9);
            assert!((5..=9).contains(&c));
        }
    }

    #[test]
    fn unit_interval_floats() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn choose_uniform_support() {
        let mut rng = StdRng::seed_from_u64(17);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            let &x = v.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn full_width_u128_sampling() {
        let mut rng = StdRng::seed_from_u64(19);
        let x: u128 = StandardSample::sample(&mut rng);
        let y: u128 = StandardSample::sample(&mut rng);
        assert_ne!(x, y);
    }
}
