//! Offline stand-in for `serde` (serialization side only).
//!
//! The peercache workspace only ever *serializes* experiment rows to JSON, so
//! this vendored crate models serialization as a visitor over an in-memory
//! [`Value`] tree that `serde_json` then renders. `#[derive(Serialize)]` is
//! provided by the sibling `serde_derive` proc-macro crate (enabled through
//! the `derive` feature, like upstream).
#![forbid(unsafe_code)]

use std::collections::BTreeMap;

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// A JSON-shaped value tree produced by serialization.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any integer (stored widened; JSON has one number type).
    Int(i128),
    /// Unsigned integer too large for `i128`.
    UInt(u128),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved via the paired vec.
    Object(Vec<(String, Value)>),
}

/// Types that can be rendered into a [`Value`] tree.
pub trait Serialize {
    /// Produce the value tree for `self`.
    fn to_value(&self) -> Value;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
    )*};
}

impl_serialize_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        Value::UInt(*self)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

macro_rules! impl_serialize_tuple {
    ($($name:ident . $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    };
}

impl_serialize_tuple!(A.0);
impl_serialize_tuple!(A.0, B.1);
impl_serialize_tuple!(A.0, B.1, C.2);
impl_serialize_tuple!(A.0, B.1, C.2, D.3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers() {
        assert_eq!(3u32.to_value(), Value::Int(3));
        assert_eq!((-7i64).to_value(), Value::Int(-7));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::Str("hi".into()));
        assert_eq!(Option::<u8>::None.to_value(), Value::Null);
        assert_eq!(Some(1u8).to_value(), Value::Int(1));
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Array(vec![Value::Int(1), Value::Int(2)])
        );
    }
}
