//! Offline stand-in for `serde_json` (serialization only).
//!
//! Renders the vendored `serde::Value` tree with the same surface syntax as
//! upstream: compact output uses `"key":value` with no spaces; pretty output
//! uses two-space indentation. Non-finite floats serialize as `null`
//! (upstream errors instead; the experiment rows here never contain
//! non-finite values, so the infallible fallback is safe and keeps the
//! `Result` API shape without a failure path to test).
#![forbid(unsafe_code)]

use serde::{Serialize, Value};

/// Error type for serialization (kept for API compatibility; the vendored
/// renderer never fails).
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

fn render(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => render_float(*f, out),
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

fn render_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Match serde_json: integral floats keep a trailing `.0`.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_matches_serde_json_syntax() {
        let v = vec![("a".to_string(), 1u32)];
        // Tuples serialize as arrays; build an object through a BTreeMap.
        let mut m = std::collections::BTreeMap::new();
        m.insert("figure", "fig6".to_string());
        let json = to_string(&m).unwrap();
        assert_eq!(json, "{\"figure\":\"fig6\"}");
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[\"a\",1]]");
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn pretty_output_indents() {
        let v = vec![1u8, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn strings_escape_control_chars() {
        assert_eq!(to_string("a\"b\\c\nd").unwrap(), "\"a\\\"b\\\\c\\nd\"");
    }
}
