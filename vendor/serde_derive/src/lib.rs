//! `#[derive(Serialize)]` for the vendored serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are unavailable offline). Supports the shapes the workspace uses:
//! plain structs with named fields, unit structs, and enums whose variants
//! are all unit-like (serialized as their name, like upstream's external
//! tagging for unit variants).

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (vendored stand-in) for a struct or unit enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    match parse(&tokens) {
        Ok(item) => render(&item),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("valid error tokens"),
    }
}

enum Item {
    Struct { name: String, fields: Vec<String> },
    UnitEnum { name: String, variants: Vec<String> },
}

fn parse(tokens: &[TokenTree]) -> Result<Item, String> {
    let mut i = 0usize;
    // Skip attributes (`#[...]`) and visibility / modifier keywords.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2; // '#' + bracketed group
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                // Skip `(crate)`-style visibility scopes.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum keyword, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    // Reject generics: nothing in the workspace derives on generic types.
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err("vendored derive(Serialize) does not support generics".into());
        }
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            None => Ok(Item::Struct {
                name,
                fields: Vec::new(),
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::Struct {
                name,
                fields: Vec::new(),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Struct {
                name,
                fields: named_fields(&g.stream().into_iter().collect::<Vec<_>>())?,
            }),
            other => Err(format!(
                "vendored derive(Serialize) supports only named-field structs, found {other:?}"
            )),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::UnitEnum {
                name,
                variants: unit_variants(&g.stream().into_iter().collect::<Vec<_>>())?,
            }),
            other => Err(format!("expected enum body, found {other:?}")),
        },
        other => Err(format!("cannot derive Serialize for `{other}` items")),
    }
}

/// Extract field names from a named-field struct body.
fn named_fields(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        // Skip per-field attributes and visibility.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            _ => {}
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected ':' after field name, found {other:?}")),
        }
        // Skip the type: consume until a top-level comma (angle-bracket aware;
        // `< >` are bare puncts in token streams, unlike `()`/`[]`/`{}`).
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Extract variant names from an all-unit enum body.
fn unit_variants(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) => {
                variants.push(id.to_string());
                i += 1;
                match tokens.get(i) {
                    None => {}
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
                    Some(other) => {
                        return Err(format!(
                            "vendored derive(Serialize) supports only unit enum variants, \
                             found {other:?}"
                        ))
                    }
                }
            }
            other => return Err(format!("expected variant name, found {other:?}")),
        }
    }
    Ok(variants)
}

fn render(item: &Item) -> TokenStream {
    let src = match item {
        Item::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push(({f:?}.to_string(), \
                         serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         let mut __fields: Vec<(String, serde::Value)> = Vec::new();\n\
                         {pushes}\
                         serde::Value::Object(__fields)\n\
                     }}\n\
                 }}"
            )
        }
        Item::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => serde::Value::Str({v:?}.to_string()),\n"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse().expect("derive output must be valid Rust")
}
