//! Offline stand-in for `criterion`.
//!
//! Provides the macro + type surface the peercache benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_with_input`, `BenchmarkId`, `black_box`) with a simple
//! measure-and-print harness instead of criterion's statistical machinery.
//!
//! Behaviour:
//!
//! - Under `cargo test` (cargo passes `--test` to `harness = false` bench
//!   binaries), each benchmark body runs **once** as a smoke test and no
//!   timing is reported — keeping tier-1 `cargo test` fast.
//! - Under `cargo bench`, each benchmark is warmed up briefly and then timed
//!   for a fixed iteration budget; mean ns/iter is printed.
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export-style helper mirroring `criterion::black_box`.
///
/// Uses `std::hint::black_box`, which is what criterion 0.5 does on recent
/// toolchains.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group (upstream `BenchmarkId`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// A benchmark id made of a function name plus a parameter display value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Per-iteration timing driver passed to benchmark closures.
pub struct Bencher {
    smoke_only: bool,
    last_mean_ns: f64,
}

impl Bencher {
    /// Time `routine` (or run it once in smoke mode).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke_only {
            black_box(routine());
            return;
        }
        // Warm-up: run until ~50ms have elapsed to stabilise caches.
        let warmup = Instant::now();
        let mut warm_iters: u64 = 0;
        while warmup.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            warm_iters += 1;
        }
        // Measurement: size the batch off the warm-up rate, capped for
        // slow benchmarks.
        let iters = warm_iters.clamp(10, 100_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = start.elapsed();
        self.last_mean_ns = total.as_nanos() as f64 / iters as f64;
    }
}

/// A named collection of related benchmarks (upstream `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            smoke_only: self.criterion.smoke_only,
            last_mean_ns: f64::NAN,
        };
        f(&mut b, input);
        if self.criterion.smoke_only {
            println!("{}/{id}: ok (smoke)", self.name);
        } else {
            println!("{}/{id}: {:.1} ns/iter", self.name, b.last_mean_ns);
        }
    }

    /// Run one benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(id, &(), |b, _unit| f(b));
    }

    /// End the group (prints nothing; kept for API compatibility).
    pub fn finish(self) {}
}

/// The top-level harness handle (upstream `Criterion`).
pub struct Criterion {
    smoke_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes `harness = false` bench targets with `--test` during
        // `cargo test`; in that mode every routine runs once, untimed.
        let smoke_only = std::env::args().any(|a| a == "--test");
        Self { smoke_only }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name);
        group.bench_function(BenchmarkId::new(name, "-"), &mut f);
        group.finish();
    }
}

/// Declare a group of benchmark functions (upstream `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench binary's `main` (upstream `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
