//! The [`Strategy`] trait and combinators for the vendored proptest.

use crate::test_runner::TestRng;

/// A recipe for generating values of type `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking machinery:
/// `generate` draws a single value directly from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate an intermediate value, then generate from the strategy it
    /// selects.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `pred`; other draws are retried.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A type-erased strategy (upstream's `BoxedStrategy`).
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self {
            inner: std::rc::Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Copy, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}': predicate rejected 10000 draws",
            self.whence
        );
    }
}

/// Uniform choice among type-erased strategies (backs [`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build a union; panics when `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty => $draw:ident),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + rng.below_u128(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                if lo as u128 == 0 && hi as u128 == <$t>::MAX as u128 {
                    return rng.$draw() as $t;
                }
                let span = (hi as u128) - (lo as u128) + 1;
                lo + rng.below_u128(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(
    u8 => next_u64,
    u16 => next_u64,
    u32 => next_u64,
    u64 => next_u64,
    usize => next_u64,
    u128 => next_u128,
);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Bounds accepted by collection strategies: a fixed size, `lo..hi`, or
/// `lo..=hi`.
#[derive(Clone, Debug)]
pub enum SizeBound {
    /// Exactly this many elements.
    Exact(usize),
    /// Uniform in `[lo, hi)`.
    HalfOpen(usize, usize),
    /// Uniform in `[lo, hi]`.
    Closed(usize, usize),
}

impl SizeBound {
    pub(crate) fn draw(&self, rng: &mut TestRng) -> usize {
        match *self {
            SizeBound::Exact(n) => n,
            SizeBound::HalfOpen(lo, hi) => {
                assert!(lo < hi, "empty size range");
                lo + (rng.next_u64() % (hi - lo) as u64) as usize
            }
            SizeBound::Closed(lo, hi) => {
                assert!(lo <= hi, "empty size range");
                lo + (rng.next_u64() % (hi - lo + 1) as u64) as usize
            }
        }
    }
}

impl From<usize> for SizeBound {
    fn from(n: usize) -> Self {
        SizeBound::Exact(n)
    }
}

impl From<core::ops::Range<usize>> for SizeBound {
    fn from(r: core::ops::Range<usize>) -> Self {
        SizeBound::HalfOpen(r.start, r.end)
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeBound {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeBound::Closed(*r.start(), *r.end())
    }
}

/// Types supporting `any::<T>()` in the prelude.
pub trait ArbitraryValue {
    /// The canonical full-domain strategy for the type.
    type Strategy: Strategy<Value = Self>;

    /// Build that strategy.
    fn arbitrary() -> Self::Strategy;
}

impl ArbitraryValue for bool {
    type Strategy = crate::bool::Any;

    fn arbitrary() -> Self::Strategy {
        crate::bool::ANY
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            type Strategy = core::ops::RangeInclusive<$t>;

            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, u128);
