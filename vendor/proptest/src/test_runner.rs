//! Test-runner plumbing: configuration, per-case error type, and the RNG.

/// Subset of upstream `ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is redrawn.
    Reject(String),
    /// A `prop_assert*!` failed; the whole property fails.
    Fail(String),
}

impl TestCaseError {
    /// Build a rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// Build a failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

/// Deterministic xoshiro256** generator used for all strategies.
///
/// Each property derives its seed from the test name (plus the optional
/// `PROPTEST_SEED` environment variable), so a failing case reproduces
/// exactly on re-run without any persistence files.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed a generator for the named test.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let env_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        // FNV-1a over the test name, mixed with the optional env seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ env_seed.rotate_left(17);
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::seed_from_u64(h)
    }

    /// Expand a 64-bit seed into the full state via SplitMix64.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Self { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 128 random bits.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, span)`; `span` must be nonzero.
    pub fn below_u128(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        if span <= u128::from(u64::MAX) {
            u128::from(self.next_u64()) % span
        } else {
            self.next_u128() % span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_seeding_is_stable() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        let mut c = TestRng::for_test("beta");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn below_u128_in_bounds() {
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(rng.below_u128(7) < 7);
            assert!(rng.below_u128(u128::MAX) < u128::MAX);
        }
    }
}
