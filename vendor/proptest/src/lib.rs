//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! re-implements the slice of the proptest 1.x API that the peercache test
//! suites use: the [`proptest!`] macro, range / tuple / collection / option
//! strategies, `prop_map` / `prop_flat_map` adapters, [`prop_oneof!`], and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, by design:
//!
//! - **No shrinking.** A failing case reports the generated inputs via the
//!   panic message (tests `Debug`-format their own inputs in assertions), but
//!   no minimisation pass runs.
//! - **Deterministic seeding.** Each test derives its RNG seed from the test
//!   function name, so failures reproduce exactly across runs. Set
//!   `PROPTEST_SEED` to perturb the whole suite.
//! - **Rejections** (`prop_assume!`) retry the case up to a fixed multiple of
//!   the configured case count before giving up, like upstream.
#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use crate::strategy::{SizeBound, Strategy};
    use std::collections::BTreeSet;

    /// Strategy producing `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeBound>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy producing a `BTreeSet` with a size drawn from `size`.
    ///
    /// Mirrors upstream semantics: duplicate draws collapse, and the
    /// generator retries until the set reaches the drawn target size (or a
    /// retry cap, for small value domains).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeBound>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeBound,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> Self::Value {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`btree_set`].
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeBound,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> Self::Value {
            let target = self.size.draw(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 64 + 64 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Option strategies.
pub mod option {
    use crate::strategy::Strategy;

    /// `Some` with probability `p`, `None` otherwise.
    pub fn weighted<S: Strategy>(p: f64, inner: S) -> Weighted<S> {
        Weighted { p, inner }
    }

    /// See [`weighted`].
    #[derive(Clone, Debug)]
    pub struct Weighted<S> {
        p: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for Weighted<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> Self::Value {
            if rng.next_f64() < self.p {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;

    /// Strategy producing a uniformly random `bool`.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The uniform boolean strategy (upstream's `proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> Self::Value {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Numeric strategies live directly on range types; this module exists for
/// path compatibility with upstream (`proptest::num`).
pub mod num {}

/// The `prop` alias used by `proptest::prelude::*` imports.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::num;
    pub use crate::option;
}

/// Common imports.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Upstream's `any::<T>()` for the handful of types the suites use.
    pub fn any<T: crate::strategy::ArbitraryValue>() -> T::Strategy {
        T::arbitrary()
    }
}

/// `proptest!` — run each enclosed `#[test]` function over many generated
/// cases. Supports the optional
/// `#![proptest_config(ProptestConfig::with_cases(n))]` header.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    ( @impl ($cfg:expr); $(
        $(#[$meta:meta])+
        fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )* ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(16).max(64);
                while accepted < config.cases {
                    attempts += 1;
                    if attempts > max_attempts {
                        panic!(
                            "proptest '{}': too many rejected cases ({} accepted of {} wanted)",
                            stringify!($name), accepted, config.cases,
                        );
                    }
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let $pat =
                                    $crate::strategy::Strategy::generate(&($strat), &mut rng);
                            )*
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => continue,
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed at case {}: {}",
                                stringify!($name), accepted, msg,
                            );
                        }
                    }
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Discard the current case (and redraw) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Pick uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}
